//===- tests/router_test.cpp - Consistent-hash router unit + e2e tests ----===//
//
// Pins the fleet tier's contracts (docs/FLEET.md):
//
// - HashRing: every walk enumerates all members exactly once, is
//   deterministic, and spreads first-choice ownership across members;
// - routingPoint: depends on exactly the content-defining request fields
//   (ir, pipeline, check/report) — never on id or the validate flag — and
//   handles unparsable payloads deterministically;
// - Router end-to-end over real shards (in-process Servers): requests are
//   answered, repeat programs keep their shard affinity, a downed shard
//   fails over to the next ring node, a shard dying *mid-request* (socket
//   closed after the frame is read, before any reply) is retried
//   elsewhere, shutdown drains in-flight requests, and only a fully dark
//   fleet yields `unavailable`;
// - ResponseCache: keys ignore the envelope (id, deadline) but cover every
//   semantics-bearing field, eviction is LRU by bytes, repeats are
//   answered without touching a shard, and error responses are never
//   cached.
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Router.h"
#include "server/Server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <arpa/inet.h>
#include <atomic>
#include <netinet/in.h>
#include <set>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lcm;
using namespace lcm::server;
using json::Value;

namespace {

std::string statusOf(const Value &Response) {
  const Value *S = Response.find("status");
  return S && S->isString() ? S->asString() : "(missing)";
}

std::string makePayload(int64_t Id, const std::string &Ir,
                        bool Validate = false) {
  Request R;
  R.Id = Value::number(Id);
  R.Ir = Ir;
  R.Validate = Validate;
  return requestToJson(R).dump(0);
}

/// Distinct well-formed programs: the constant keeps the routing digests
/// apart, so a search over N can find a payload owned by any given shard.
std::string program(int N) {
  return "block b0\n  x = a + " + std::to_string(N) +
         "\n  y = a + " + std::to_string(N) + "\n  z = x + y\n  exit\n";
}

//===----------------------------------------------------------------------===//
// HashRing
//===----------------------------------------------------------------------===//

TEST(HashRing, WalkEnumeratesEveryMemberOnce) {
  HashRing Ring;
  Ring.add("tcp:7001", 64);
  Ring.add("tcp:7002", 64);
  Ring.add("tcp:7003", 64);
  ASSERT_EQ(Ring.members(), 3u);

  for (uint64_t Point : {uint64_t(0), uint64_t(1), ~uint64_t(0),
                         uint64_t(0x9e3779b97f4a7c15ULL)}) {
    std::vector<size_t> Order = Ring.walk(Point);
    ASSERT_EQ(Order.size(), 3u) << "point " << Point;
    std::set<size_t> Distinct(Order.begin(), Order.end());
    EXPECT_EQ(Distinct.size(), 3u) << "duplicate member in walk";
    EXPECT_EQ(Order, Ring.walk(Point)) << "walk must be deterministic";
  }
}

TEST(HashRing, EmptyAndSingleMember) {
  HashRing Empty;
  EXPECT_TRUE(Empty.walk(42).empty());

  HashRing One;
  One.add("tcp:7001", 64);
  EXPECT_EQ(One.walk(42), std::vector<size_t>{0});
}

TEST(HashRing, FirstChoiceOwnershipIsSpread) {
  // With 64 virtual nodes per member, no member should own everything:
  // scan many points and require each member to be the first choice for a
  // reasonable share.
  HashRing Ring;
  Ring.add("tcp:7001", 64);
  Ring.add("tcp:7002", 64);
  Ring.add("tcp:7003", 64);
  std::vector<int> FirstChoice(3, 0);
  constexpr int Points = 3000;
  for (int I = 0; I != Points; ++I) {
    // A splitmix-style spread of the loop counter.
    uint64_t Z = uint64_t(I) + 0x9e3779b97f4a7c15ULL;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    ++FirstChoice[Ring.walk(Z ^ (Z >> 31))[0]];
  }
  for (int N : FirstChoice)
    EXPECT_GT(N, Points / 10) << "a member owns too little of the ring";
}

//===----------------------------------------------------------------------===//
// Routing digest
//===----------------------------------------------------------------------===//

TEST(RoutingPoint, DependsOnContentNotEnvelope) {
  const std::string Ir = program(1);
  const uint64_t P1 = Router::routingPoint(makePayload(1, Ir));
  const uint64_t P2 = Router::routingPoint(makePayload(999, Ir));
  EXPECT_EQ(P1, P2) << "the request id must not move a request";
  EXPECT_EQ(P1, Router::routingPoint(makePayload(1, Ir, /*Validate=*/true)))
      << "the validate flag must not move a request";
  EXPECT_NE(P1, Router::routingPoint(makePayload(1, program(2))))
      << "different programs should land on different points";
}

TEST(RoutingPoint, ExtractsIdAndHandlesGarbage) {
  Value Id;
  Router::routingPoint(makePayload(77, program(0)), &Id);
  EXPECT_TRUE(Id == Value::number(int64_t(77)));

  const uint64_t G1 = Router::routingPoint("not json at all");
  const uint64_t G2 = Router::routingPoint("not json at all");
  EXPECT_EQ(G1, G2) << "unparsable payloads still need stable placement";
}

//===----------------------------------------------------------------------===//
// ResponseCache
//===----------------------------------------------------------------------===//

TEST(ResponseCache, RequestKeyIgnoresEnvelopeAndMemberOrder) {
  cache::Digest K1, K2;
  ASSERT_TRUE(ResponseCache::requestKey(R"({"ir":"x","id":1})", K1));
  ASSERT_TRUE(
      ResponseCache::requestKey(R"({"id":7,"deadline_ms":5,"ir":"x"})", K2));
  EXPECT_TRUE(K1 == K2) << "id/deadline or member order leaked into the key";

  // Every semantics-bearing field must move the key: a validate:true
  // response (carries `validated`) must never answer a validate-less
  // request.
  cache::Digest K3;
  ASSERT_TRUE(ResponseCache::requestKey(R"({"ir":"x","validate":true})", K3));
  EXPECT_FALSE(K3 == K1);

  cache::Digest K4;
  EXPECT_FALSE(ResponseCache::requestKey("[1,2]", K4));
  EXPECT_FALSE(ResponseCache::requestKey("not json", K4));
}

TEST(ResponseCache, LruEvictsByBytesAndNullsStoredId) {
  auto Doc = [](const std::string &Tag) {
    Value V = Value::object();
    V.set("status", Value::str("ok"));
    V.set("id", Value::number(int64_t(99)));
    V.set("ir", Value::str(Tag + std::string(200, 'x')));
    return V;
  };
  // Budget fits two padded entries but not three.
  ResponseCache C(/*MaxBytes=*/700);
  cache::Digest KA{1, 0}, KB{2, 0}, KC{3, 0};
  C.put(KA, Doc("a"));
  C.put(KB, Doc("b"));

  Value Out;
  ASSERT_TRUE(C.get(KA, Out)); // A becomes most recently used.
  EXPECT_TRUE(Out.find("id")->isNull()) << "stored id must be nulled";

  C.put(KC, Doc("c")); // Evicts B, the LRU tail.
  EXPECT_FALSE(C.get(KB, Out));
  EXPECT_TRUE(C.get(KA, Out));
  EXPECT_TRUE(C.get(KC, Out));

  ResponseCache::CacheStats St = C.stats();
  EXPECT_EQ(St.Entries, 2u);
  EXPECT_EQ(St.Evictions, 1u);
  EXPECT_LE(St.Bytes, 700u);
}

//===----------------------------------------------------------------------===//
// End-to-end over real shards
//===----------------------------------------------------------------------===//

struct Fleet {
  explicit Fleet(unsigned NumShards, bool EnableTestOptions = false) {
    for (unsigned I = 0; I != NumShards; ++I) {
      ServerOptions Opts;
      Opts.TcpPort = 0;
      Opts.Workers = 2;
      Opts.Service.EnableTestOptions = EnableTestOptions;
      auto S = std::make_unique<Server>(Opts);
      std::string Error;
      EXPECT_TRUE(S->start(Error)) << Error;
      Shards.push_back(std::move(S));
    }
  }
  ~Fleet() {
    for (auto &S : Shards)
      S->shutdown();
  }

  RouterOptions routerOptions() const {
    RouterOptions Opts;
    Opts.TcpPort = 0;
    Opts.Workers = 2;
    // Keep failure paths fast: tests that down shards should not sit in
    // hundreds of milliseconds of backoff.
    Opts.RetryBackoffMs = 1;
    Opts.MaxBackoffMs = 4;
    Opts.HealthIntervalMs = 50;
    for (const auto &S : Shards) {
      ShardEndpoint Ep;
      Ep.TcpPort = S->tcpPort();
      Opts.Shards.push_back(Ep);
    }
    return Opts;
  }

  /// A ring identical to the router's, for predicting placement.
  HashRing ring(unsigned VirtualNodes = 64) const {
    HashRing R;
    for (const auto &S : Shards)
      R.add("tcp:" + std::to_string(S->tcpPort()), VirtualNodes);
    return R;
  }

  /// A payload whose failover order starts at shard \p Member.
  std::string payloadOwnedBy(size_t Member) const {
    HashRing R = ring();
    for (int N = 0; N != 4096; ++N) {
      std::string P = makePayload(N, program(N));
      if (R.walk(Router::routingPoint(P))[0] == Member)
        return P;
    }
    ADD_FAILURE() << "no payload found for member " << Member;
    return makePayload(0, program(0));
  }

  std::vector<std::unique_ptr<Server>> Shards;
};

TEST(RouterE2E, ForwardsAndKeepsAffinity) {
  Fleet F(3);
  Router R(F.routerOptions());
  std::string Error;
  ASSERT_TRUE(R.start(Error)) << Error;

  // The same program always lands on the same shard; distinct programs
  // spread out.
  const std::string Hot = F.payloadOwnedBy(1);
  for (int I = 0; I != 8; ++I) {
    Value Response = R.forward(Hot);
    ASSERT_EQ(statusOf(Response), "ok") << Response.dump();
  }
  std::vector<Router::ShardStatus> St = R.shardStatus();
  EXPECT_EQ(St[1].Forwards, 8u) << "affinity broken: owner did not serve";
  EXPECT_EQ(St[0].Forwards + St[2].Forwards, 0u);
  EXPECT_EQ(R.counters().Failovers, 0u);
  EXPECT_EQ(R.counters().Unavailable, 0u);
  R.shutdown();
}

TEST(RouterE2E, ResponseCacheAnswersRepeatsWithoutForwarding) {
  Fleet F(2);
  RouterOptions Opts = F.routerOptions();
  Opts.CacheBytes = 1 << 20;
  Router R(Opts);
  std::string Error;
  ASSERT_TRUE(R.start(Error)) << Error;

  // Same semantics under a different envelope: the repeat is served from
  // the router, never reaches a shard, and carries its own id.
  Value A = R.forward(makePayload(1, program(7)));
  ASSERT_EQ(statusOf(A), "ok") << A.dump();
  Value B = R.forward(makePayload(2, program(7)));
  ASSERT_EQ(statusOf(B), "ok") << B.dump();
  EXPECT_TRUE(*B.find("id") == Value::number(int64_t(2)));
  EXPECT_TRUE(*A.find("ir") == *B.find("ir"));
  EXPECT_EQ(R.counters().CacheHits, 1u);
  EXPECT_EQ(R.counters().CacheMisses, 1u);
  uint64_t ShardForwards = 0;
  for (const Router::ShardStatus &S : R.shardStatus())
    ShardForwards += S.Forwards;
  EXPECT_EQ(ShardForwards, 1u) << "repeat request reached a shard";

  // validate=true is a different key: it must forward.
  Value C = R.forward(makePayload(3, program(7), /*Validate=*/true));
  ASSERT_EQ(statusOf(C), "ok") << C.dump();
  EXPECT_EQ(R.counters().CacheMisses, 2u);

  // Error responses are never cached — a later fix (or recovered shard)
  // must be observed, so identical bad requests keep forwarding.
  Value E1 = R.forward(makePayload(4, "not ir"));
  Value E2 = R.forward(makePayload(5, "not ir"));
  EXPECT_EQ(statusOf(E1), statusOf(E2));
  EXPECT_NE(statusOf(E1), "ok");
  EXPECT_EQ(R.counters().CacheHits, 1u)
      << "an error response was served from the cache";
  R.shutdown();
}

TEST(RouterE2E, ClientsCannotTellARouterFromAShard) {
  Fleet F(2);
  Router R(F.routerOptions());
  std::string Error;
  ASSERT_TRUE(R.start(Error)) << Error;
  ASSERT_GT(R.tcpPort(), 0);

  Client Cl;
  ASSERT_TRUE(Cl.connectTcp(R.tcpPort(), Error, /*RetryMs=*/2000)) << Error;
  for (int64_t Id = 0; Id != 10; ++Id) {
    Request Req;
    Req.Id = Value::number(Id);
    Req.Ir = program(int(Id));
    Req.Validate = true;
    Value Response;
    ASSERT_TRUE(Cl.call(Req, Response, Error)) << Error;
    ASSERT_EQ(statusOf(Response), "ok") << Response.dump();
    EXPECT_TRUE(*Response.find("id") == Req.Id);
    EXPECT_TRUE(Response.find("validated")->asBool());
  }
  R.shutdown();
}

TEST(RouterE2E, DownedShardFailsOver) {
  Fleet F(3);
  Router R(F.routerOptions());
  std::string Error;
  ASSERT_TRUE(R.start(Error)) << Error;

  const std::string Doomed = F.payloadOwnedBy(0);
  ASSERT_EQ(statusOf(R.forward(Doomed)), "ok");

  // Kill the owner; the same program must now be answered by another
  // shard, not dropped.
  F.Shards[0]->shutdown();
  for (int I = 0; I != 4; ++I) {
    Value Response = R.forward(Doomed);
    ASSERT_EQ(statusOf(Response), "ok") << Response.dump();
  }
  EXPECT_GE(R.counters().Failovers, 4u);
  EXPECT_EQ(R.counters().Unavailable, 0u);
  std::vector<Router::ShardStatus> St = R.shardStatus();
  EXPECT_EQ(St[0].Forwards, 1u);
  EXPECT_EQ(St[1].Forwards + St[2].Forwards, 4u);
  R.shutdown();
}

TEST(RouterE2E, AllShardsDownAnswersUnavailable) {
  Fleet F(2);
  RouterOptions Opts = F.routerOptions();
  Opts.MaxAttempts = 3;
  Router R(Opts);
  std::string Error;
  ASSERT_TRUE(R.start(Error)) << Error;

  F.Shards[0]->shutdown();
  F.Shards[1]->shutdown();
  Value Response = R.forward(makePayload(5, program(5)));
  EXPECT_EQ(statusOf(Response), "unavailable") << Response.dump();
  EXPECT_TRUE(*Response.find("id") == Value::number(int64_t(5)))
      << "even an unavailable answer must echo the id";
  EXPECT_GE(R.counters().Unavailable, 1u);
  R.shutdown();
}

/// A raw listener that accepts one connection, reads a little, then slams
/// it shut — a shard dying *mid-request*, after the frame was sent but
/// before any reply.  Keeps its port bound so the router charges a real
/// IO error, not a connection refusal.
struct MidRequestKiller {
  MidRequestKiller() {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(ListenFd, 0);
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)),
              0);
    socklen_t Len = sizeof(Addr);
    ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len);
    Port = ntohs(Addr.sin_port);
    EXPECT_EQ(::listen(ListenFd, 8), 0);
    Acceptor = std::thread([this] {
      for (;;) {
        int Fd = ::accept(ListenFd, nullptr, nullptr);
        if (Fd < 0)
          return; // Listener closed: test over.
        char Buf[256];
        ssize_t Ignored = ::read(Fd, Buf, sizeof(Buf));
        (void)Ignored;
        ::close(Fd);
        Dropped.fetch_add(1);
      }
    });
  }
  ~MidRequestKiller() {
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    if (Acceptor.joinable())
      Acceptor.join();
  }
  int ListenFd = -1;
  int Port = 0;
  std::thread Acceptor;
  std::atomic<int> Dropped{0};
};

TEST(RouterE2E, ShardKilledMidRequestIsRetriedElsewhere) {
  // Shard 0 is the killer (reads the frame, closes); shard 1 is real.
  MidRequestKiller Killer;
  ServerOptions RealOpts;
  RealOpts.TcpPort = 0;
  RealOpts.Workers = 2;
  Server Real(RealOpts);
  std::string Error;
  ASSERT_TRUE(Real.start(Error)) << Error;

  RouterOptions Opts;
  Opts.TcpPort = 0;
  Opts.RetryBackoffMs = 1;
  Opts.MaxBackoffMs = 4;
  Opts.HealthIntervalMs = 50;
  ShardEndpoint KillerEp, RealEp;
  KillerEp.TcpPort = Killer.Port;
  RealEp.TcpPort = Real.tcpPort();
  Opts.Shards = {KillerEp, RealEp};
  Router R(Opts);
  ASSERT_TRUE(R.start(Error)) << Error;

  // Find a payload whose failover order starts at the killer, so the
  // mid-request death is on the request's primary path.
  HashRing Ring;
  Ring.add(KillerEp.name(), Opts.VirtualNodes);
  Ring.add(RealEp.name(), Opts.VirtualNodes);
  std::string Payload;
  for (int N = 0; N != 4096 && Payload.empty(); ++N) {
    std::string P = makePayload(N, program(N));
    if (Ring.walk(Router::routingPoint(P))[0] == 0)
      Payload = P;
  }
  ASSERT_FALSE(Payload.empty());

  Value Response = R.forward(Payload);
  EXPECT_EQ(statusOf(Response), "ok") << Response.dump();
  EXPECT_GE(Killer.Dropped.load(), 1)
      << "the payload never reached the dying shard";
  EXPECT_GE(R.counters().Retries, 1u);
  EXPECT_GE(R.counters().Failovers, 1u);
  EXPECT_EQ(R.counters().Unavailable, 0u);
  std::vector<Router::ShardStatus> St = R.shardStatus();
  EXPECT_EQ(St[1].Forwards, 1u) << "the real shard must have answered";
  R.shutdown();
}

TEST(RouterE2E, RecoveredShardReturnsToRotation) {
  Fleet F(2);
  RouterOptions Opts = F.routerOptions();
  Router R(Opts);
  std::string Error;
  ASSERT_TRUE(R.start(Error)) << Error;

  const std::string Payload = F.payloadOwnedBy(0);
  F.Shards[0]->shutdown();
  ASSERT_EQ(statusOf(R.forward(Payload)), "ok"); // Served by shard 1.

  // Resurrect shard 0 on a *new* Server bound to the same port.
  const int OldPort = F.Shards[0]->tcpPort();
  ServerOptions SrvOpts;
  SrvOpts.TcpPort = OldPort;
  SrvOpts.Workers = 2;
  Server Reborn(SrvOpts);
  ASSERT_TRUE(Reborn.start(Error)) << Error;

  // The health loop (50ms period here) must notice and route the owner's
  // traffic back to it.
  const uint64_t Before = R.shardStatus()[0].Forwards;
  bool Returned = false;
  for (int I = 0; I != 100 && !Returned; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(statusOf(R.forward(Payload)), "ok");
    Returned = R.shardStatus()[0].Forwards > Before;
  }
  EXPECT_TRUE(Returned) << "owner never returned to rotation";
  R.shutdown();
  Reborn.shutdown();
}

TEST(RouterE2E, ShutdownDrainsInFlightRequests) {
  Fleet F(2, /*EnableTestOptions=*/true);
  Router R(F.routerOptions());
  std::string Error;
  ASSERT_TRUE(R.start(Error)) << Error;

  // Two slow requests through the router's real socket path, then a
  // shutdown racing them: both must still be answered `ok` — the drain
  // contract clients rely on when a router is SIGTERMed (lcm_router
  // forwards the same shutdown() call).
  Client Cl;
  ASSERT_TRUE(Cl.connectTcp(R.tcpPort(), Error, /*RetryMs=*/2000)) << Error;
  for (int64_t Id = 0; Id != 2; ++Id) {
    Request Req;
    Req.Id = Value::number(Id);
    Req.Ir = program(int(Id));
    Req.TestSleepMs = 300;
    ASSERT_TRUE(Cl.sendPayload(requestToJson(Req).dump(0), Error)) << Error;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::thread Drainer([&R] { R.shutdown(); });
  int Ok = 0;
  for (int I = 0; I != 2; ++I) {
    Value Response;
    ASSERT_TRUE(Cl.recvResponse(Response, Error)) << Error;
    if (statusOf(Response) == "ok")
      ++Ok;
    else
      ADD_FAILURE() << "in-flight request lost in drain: "
                    << Response.dump();
  }
  Drainer.join();
  EXPECT_EQ(Ok, 2);
}

} // namespace
