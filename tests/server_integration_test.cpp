//===- tests/server_integration_test.cpp - Server end-to-end over sockets -===//
//
// Spins up the real Server (listeners, reader threads, worker pool) inside
// the test process and drives it with real socket clients, pinning the
// acceptance contract of docs/SERVER.md:
//
// - concurrent clients over loopback TCP: every request answered exactly
//   once, no lost or corrupted responses, and every optimized program is
//   re-checked for semantic equivalence against the original under the
//   interpreter's seeded oracle (the same alignment property_test uses);
// - the Unix-domain transport serves the same protocol;
// - backpressure: a full bounded queue answers `overloaded` immediately;
// - deadlines: an expired deadline answers `deadline_exceeded`;
// - malformed payloads and broken framing answer structured errors;
// - graceful drain: shutdown() while requests are executing still answers
//   everything admitted, and frames arriving mid-drain get
//   `shutting_down`.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "metrics/Cost.h"
#include "server/Client.h"
#include "server/Server.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lcm;
using namespace lcm::server;
using json::Value;

namespace {

const char *Programs[] = {
    // Partially redundant a+b: the paper's motivating shape.
    "block entry\n  goto top\n"
    "block top\n  if p then compute else skip\n"
    "block compute\n  h = a + b\n  x = h\n  goto join\n"
    "block skip\n  t = k\n  goto join\n"
    "block join\n  y = a + b\n  exit\n",
    // A loop with an invariant expression.
    "block entry\n  i = 4\n  goto loop\n"
    "block loop\n  x = a + b\n  i = i - 1\n  c = i > 0\n"
    "  if c then loop else done\n"
    "block done\n  z = x + i\n  exit\n",
    // Straight-line redundancy for LCSE.
    "block b0\n  x = a + b\n  y = a + b\n  z = x + y\n  exit\n",
};

/// The oracle check the acceptance criteria demand: the IR a response
/// carries must behave exactly like the program that was sent.  Unlike
/// property_test, the optimized side here comes back *reparsed*, so its
/// VarIds follow first-appearance order in the response text (new PRE
/// temps shift everything); inputs and final state are therefore aligned
/// by variable name, not by id.
testing::AssertionResult equivalentToOriginal(const std::string &OriginalIr,
                                              const std::string &ResponseIr) {
  ParseResult Orig = parseFunction(OriginalIr);
  if (!Orig)
    return testing::AssertionFailure() << "original unparsable: " << Orig.Error;
  ParseResult Opt = parseFunction(ResponseIr);
  if (!Opt)
    return testing::AssertionFailure() << "response unparsable: " << Opt.Error;

  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    std::vector<int64_t> Inputs =
        makeSeededInputs(Seed, Orig.Fn.numVars());
    std::vector<int64_t> OptInputs(Opt.Fn.numVars(), 0);
    for (VarId V = 0; V != VarId(Orig.Fn.numVars()); ++V) {
      VarId W = Opt.Fn.findVar(Orig.Fn.varName(V));
      if (W != InvalidVar)
        OptInputs[W] = Inputs[V];
    }

    Interpreter::Options Opts;
    Opts.MaxOriginalBlockVisits = 3000;
    Opts.OriginalBlockCount = uint32_t(Orig.Fn.numBlocks());
    RandomOracle OracleA(Seed ^ 0x94d049bb133111ebULL);
    RandomOracle OracleB(Seed ^ 0x94d049bb133111ebULL);
    InterpResult Base = Interpreter::run(Orig.Fn, Inputs, OracleA, Opts);
    InterpResult After = Interpreter::run(Opt.Fn, OptInputs, OracleB, Opts);

    if (Base.ReachedExit != After.ReachedExit ||
        Base.OriginalBlocksExecuted != After.OriginalBlocksExecuted)
      return testing::AssertionFailure()
             << "runs stopped at different points under seed " << Seed
             << "\n== response ==\n"
             << ResponseIr;
    for (VarId V = 0; V != VarId(Orig.Fn.numVars()); ++V) {
      VarId W = Opt.Fn.findVar(Orig.Fn.varName(V));
      if (W == InvalidVar || Base.Vars[V] != After.Vars[W])
        return testing::AssertionFailure()
               << "variable '" << Orig.Fn.varName(V)
               << "' diverged under seed " << Seed << "\n== response ==\n"
               << ResponseIr;
    }
  }
  return testing::AssertionSuccess();
}

std::string statusOf(const Value &Response) {
  const Value *S = Response.find("status");
  return S && S->isString() ? S->asString() : "(missing)";
}

Request makeRequest(int64_t Id, const std::string &Ir) {
  Request R;
  R.Id = Value::number(Id);
  R.Ir = Ir;
  return R;
}

struct RunningServer {
  explicit RunningServer(ServerOptions Opts) : S(Opts) {
    std::string Error;
    Started = S.start(Error);
    EXPECT_TRUE(Started) << Error;
  }
  ~RunningServer() { S.shutdown(); }
  Server S;
  bool Started = false;
};

//===----------------------------------------------------------------------===//
// Concurrency: N clients x M requests, zero lost, all equivalent
//===----------------------------------------------------------------------===//

TEST(ServerIntegration, ConcurrentClientsOverTcp) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.Workers = 4;
  Opts.QueueCapacity = 256;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);
  const int Port = Srv.S.tcpPort();
  ASSERT_GT(Port, 0);

  constexpr int NumClients = 4;
  constexpr int RequestsPerClient = 50;
  std::atomic<int> OkResponses{0};
  std::atomic<int> Failures{0};

  std::vector<std::thread> Clients;
  for (int C = 0; C != NumClients; ++C)
    Clients.emplace_back([&, C] {
      Client Cl;
      std::string Error;
      if (!Cl.connectTcp(Port, Error, /*RetryMs=*/2000)) {
        ADD_FAILURE() << Error;
        Failures.fetch_add(RequestsPerClient);
        return;
      }
      for (int I = 0; I != RequestsPerClient; ++I) {
        const int64_t Id = int64_t(C) * RequestsPerClient + I;
        const std::string &Ir =
            Programs[size_t(Id) % (sizeof(Programs) / sizeof(Programs[0]))];
        Value Response;
        if (!Cl.call(makeRequest(Id, Ir), Response, Error)) {
          ADD_FAILURE() << "client " << C << " request " << I << ": " << Error;
          Failures.fetch_add(1);
          return;
        }
        // Exactly-once, uncorrupted: right schema, right id, ok status,
        // and semantically equivalent IR.
        if (statusOf(Response) != "ok" ||
            !(*Response.find("id") == Value::number(Id)) ||
            !equivalentToOriginal(Ir, Response.find("ir")->asString())) {
          ADD_FAILURE() << "bad response for id " << Id << ": "
                        << Response.dump();
          Failures.fetch_add(1);
          continue;
        }
        OkResponses.fetch_add(1);
      }
    });
  for (std::thread &T : Clients)
    T.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(OkResponses.load(), NumClients * RequestsPerClient);
  // Drain before reading counters: a client can see its response bytes
  // before the worker's post-send counter increment has executed, so the
  // counts are only stable once the workers have been joined.
  Srv.S.shutdown();
  Server::Counters Counters = Srv.S.counters();
  EXPECT_EQ(Counters.FramesIn, uint64_t(NumClients * RequestsPerClient));
  EXPECT_EQ(Counters.ResponsesOut, uint64_t(NumClients * RequestsPerClient));
  EXPECT_EQ(Counters.Overloaded, 0u);
  EXPECT_EQ(Counters.FramingErrors, 0u);
}

TEST(ServerIntegration, UnixTransport) {
  const std::string Path =
      "/tmp/lcm_it_" + std::to_string(::getpid()) + ".sock";
  ServerOptions Opts;
  Opts.UnixPath = Path;
  Opts.Workers = 2;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectUnix(Path, Error, /*RetryMs=*/2000)) << Error;
  for (int I = 0; I != 10; ++I) {
    Value Response;
    ASSERT_TRUE(Cl.call(makeRequest(I, Programs[0]), Response, Error))
        << Error;
    EXPECT_EQ(statusOf(Response), "ok");
    EXPECT_TRUE(
        equivalentToOriginal(Programs[0], Response.find("ir")->asString()));
  }
  Srv.S.shutdown();
  EXPECT_NE(::access(Path.c_str(), F_OK), 0)
      << "socket file survived shutdown";
}

//===----------------------------------------------------------------------===//
// Backpressure
//===----------------------------------------------------------------------===//

TEST(ServerIntegration, BackpressureAnswersOverloaded) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.Workers = 1;
  Opts.QueueCapacity = 1;
  Opts.Service.EnableTestOptions = true;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;

  // Occupy the single worker, then give it time to claim the request so
  // the queue is empty again.
  Request Slow = makeRequest(1, Programs[2]);
  Slow.TestSleepMs = 600;
  ASSERT_TRUE(Cl.sendPayload(requestToJson(Slow).dump(0), Error)) << Error;
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // One request fits the queue; the rest must be refused immediately.
  constexpr int Extra = 5;
  for (int I = 0; I != Extra; ++I)
    ASSERT_TRUE(Cl.sendPayload(
        requestToJson(makeRequest(2 + I, Programs[2])).dump(0), Error))
        << Error;

  int Ok = 0, Overloaded = 0;
  for (int I = 0; I != 1 + Extra; ++I) {
    Value Response;
    ASSERT_TRUE(Cl.recvResponse(Response, Error)) << Error;
    std::string Status = statusOf(Response);
    if (Status == "ok")
      ++Ok;
    else if (Status == "overloaded")
      ++Overloaded;
    else
      ADD_FAILURE() << "unexpected status: " << Response.dump();
  }
  // The sleeping request and the one the queue buffered complete; the
  // other four were shed at admission.
  EXPECT_EQ(Ok, 2);
  EXPECT_EQ(Overloaded, Extra - 1);
  EXPECT_EQ(Srv.S.counters().Overloaded, uint64_t(Extra - 1));
}

//===----------------------------------------------------------------------===//
// Deadlines
//===----------------------------------------------------------------------===//

TEST(ServerIntegration, ExpiredDeadlineAnswersDeadlineExceeded) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;

  Request R = makeRequest(7, Programs[1]);
  R.DeadlineMs = 0; // Already expired when the worker picks it up.
  Value Response;
  ASSERT_TRUE(Cl.call(R, Response, Error)) << Error;
  EXPECT_EQ(statusOf(Response), "deadline_exceeded");
  EXPECT_TRUE(*Response.find("id") == Value::number(int64_t(7)));

  // The connection is still healthy for the next request.
  ASSERT_TRUE(Cl.call(makeRequest(8, Programs[1]), Response, Error)) << Error;
  EXPECT_EQ(statusOf(Response), "ok");
}

//===----------------------------------------------------------------------===//
// Hostile input
//===----------------------------------------------------------------------===//

TEST(ServerIntegration, MalformedPayloadsGetStructuredErrors) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;

  struct Case {
    const char *Payload;
    const char *Status;
  } Cases[] = {
      {"this is not json", "bad_request"},
      {R"({"schema":"lcm-request-v1"})", "bad_request"},
      {R"({"schema":"lcm-request-v1","ir":"block b0\n  wat\n"})",
       "parse_error"},
      {R"({"schema":"lcm-request-v1","ir":"block b0\n  exit\n",)"
       R"("pipeline":"no-such-pass"})",
       "bad_request"},
  };
  for (const Case &C : Cases) {
    ASSERT_TRUE(Cl.sendPayload(C.Payload, Error)) << Error;
    Value Response;
    ASSERT_TRUE(Cl.recvResponse(Response, Error)) << Error;
    EXPECT_EQ(statusOf(Response), C.Status) << C.Payload;
    EXPECT_TRUE(Response.find("error") != nullptr);
  }
  // The server survived all of it.
  Value Response;
  ASSERT_TRUE(Cl.call(makeRequest(1, Programs[0]), Response, Error)) << Error;
  EXPECT_EQ(statusOf(Response), "ok");
}

TEST(ServerIntegration, BrokenFramingGetsErrorThenClose) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;

  // A zero-length frame poisons the stream: one structured error comes
  // back, then the server hangs up.
  ASSERT_TRUE(Cl.sendPayload("", Error)) << Error;
  Value Response;
  ASSERT_TRUE(Cl.recvResponse(Response, Error)) << Error;
  EXPECT_EQ(statusOf(Response), "bad_request");
  EXPECT_NE(Response.find("error")->asString().find("framing"),
            std::string::npos);
  EXPECT_FALSE(Cl.recvResponse(Response, Error));
  EXPECT_EQ(Srv.S.counters().FramingErrors, 1u);
}

TEST(ServerIntegration, OverLimitIrAnswersLimits) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.Service.Limits.MaxBlocks = 2;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;
  Value Response;
  ASSERT_TRUE(Cl.call(makeRequest(1, Programs[0]), Response, Error)) << Error;
  EXPECT_EQ(statusOf(Response), "limits");
}

//===----------------------------------------------------------------------===//
// Graceful drain
//===----------------------------------------------------------------------===//

TEST(ServerIntegration, DrainAnswersInFlightAndShedsNewFrames) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.Workers = 2;
  Opts.QueueCapacity = 16;
  Opts.Service.EnableTestOptions = true;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);
  const int Port = Srv.S.tcpPort();

  // Four slow requests: two executing, two queued behind them.
  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Port, Error, 2000)) << Error;
  constexpr int InFlight = 4;
  for (int I = 0; I != InFlight; ++I) {
    Request R = makeRequest(I, Programs[2]);
    R.TestSleepMs = 400;
    ASSERT_TRUE(Cl.sendPayload(requestToJson(R).dump(0), Error)) << Error;
  }

  // A second connection fires one frame mid-drain; it must be shed with
  // `shutting_down`, not silently dropped.
  std::thread LateSender([&] {
    Client Late;
    std::string Err;
    if (!Late.connectTcp(Port, Err, 2000)) {
      ADD_FAILURE() << Err;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    if (!Late.sendPayload(requestToJson(makeRequest(99, Programs[2])).dump(0),
                          Err)) {
      ADD_FAILURE() << Err;
      return;
    }
    Value Response;
    if (!Late.recvResponse(Response, Err)) {
      ADD_FAILURE() << Err;
      return;
    }
    EXPECT_EQ(statusOf(Response), "shutting_down") << Response.dump();
  });

  // Begin the drain while all four are still in flight (workers sleep
  // 400ms each, two rounds); shutdown() must block until they are
  // answered.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Srv.S.shutdown();

  int Ok = 0;
  for (int I = 0; I != InFlight; ++I) {
    Value Response;
    ASSERT_TRUE(Cl.recvResponse(Response, Error)) << Error;
    if (statusOf(Response) == "ok")
      ++Ok;
    else
      ADD_FAILURE() << "in-flight request lost: " << Response.dump();
  }
  EXPECT_EQ(Ok, InFlight);
  LateSender.join();
  EXPECT_EQ(Srv.S.counters().ShedShuttingDown, 1u);
}

//===----------------------------------------------------------------------===//
// Result cache over the wire
//===----------------------------------------------------------------------===//

std::shared_ptr<cache::ResultCache> openCache(const std::string &DiskDir) {
  cache::ResultCacheConfig Config;
  Config.DiskDir = DiskDir;
  auto Cache = std::make_shared<cache::ResultCache>(Config);
  std::string Error;
  EXPECT_TRUE(Cache->open(Error)) << Error;
  return Cache;
}

TEST(ServerIntegration, CachedResponsesOverTcp) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.Workers = 2;
  Opts.Service.Cache = openCache("");
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;

  Value First, Second;
  ASSERT_TRUE(Cl.call(makeRequest(1, Programs[0]), First, Error)) << Error;
  ASSERT_EQ(statusOf(First), "ok") << First.dump();
  const Value *Cached = First.find("cached");
  ASSERT_NE(Cached, nullptr);
  EXPECT_FALSE(Cached->asBool());

  ASSERT_TRUE(Cl.call(makeRequest(2, Programs[0]), Second, Error)) << Error;
  ASSERT_EQ(statusOf(Second), "ok") << Second.dump();
  Cached = Second.find("cached");
  ASSERT_NE(Cached, nullptr);
  EXPECT_TRUE(Cached->asBool()) << Second.dump();
  EXPECT_EQ(Second.find("ir")->asString(), First.find("ir")->asString())
      << "a cache hit must be byte-identical over the wire";
  EXPECT_EQ(Second.find("cache_key")->asString(),
            First.find("cache_key")->asString());
  EXPECT_TRUE(equivalentToOriginal(Programs[0],
                                   Second.find("ir")->asString()));
}

//===----------------------------------------------------------------------===//
// Per-request translation validation (protocol v2)
//===----------------------------------------------------------------------===//

TEST(ServerIntegration, ValidatedResponsesOverTcp) {
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.Workers = 2;
  Opts.Service.Cache = openCache("");
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;

  Request R = makeRequest(1, Programs[0]);
  R.Validate = true;
  Value First;
  ASSERT_TRUE(Cl.call(R, First, Error)) << Error;
  ASSERT_EQ(statusOf(First), "ok") << First.dump();
  ASSERT_NE(First.find("validated"), nullptr) << First.dump();
  EXPECT_TRUE(First.find("validated")->asBool());
  EXPECT_FALSE(First.find("cached")->asBool());

  // Validation runs on the served bytes, cache hits included — and the
  // validate flag itself must not fork the cache key.
  R.Id = Value::number(int64_t(2));
  Value Second;
  ASSERT_TRUE(Cl.call(R, Second, Error)) << Error;
  ASSERT_EQ(statusOf(Second), "ok") << Second.dump();
  EXPECT_TRUE(Second.find("cached")->asBool())
      << "a validate request must share the entry a plain request made";
  EXPECT_TRUE(Second.find("validated")->asBool());
  EXPECT_EQ(Second.find("cache_key")->asString(),
            First.find("cache_key")->asString());
}

TEST(ServerIntegration, ValidatorPoolOffloadsChecks) {
  // With a dedicated validator pool, the oracle re-execution leaves the
  // pipeline workers: responses still arrive validated, and the offload
  // counter proves the handoff actually happened.
  const uint64_t OffloadedBefore = Stats::get("server.validations_offloaded");
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.Workers = 2;
  Opts.Validators = 2;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;

  for (int I = 0; I != 12; ++I) {
    Request R = makeRequest(I, Programs[I % 3]);
    R.Validate = true;
    Value Response;
    ASSERT_TRUE(Cl.call(R, Response, Error)) << Error;
    ASSERT_EQ(statusOf(Response), "ok") << Response.dump();
    ASSERT_NE(Response.find("validated"), nullptr) << Response.dump();
    EXPECT_TRUE(Response.find("validated")->asBool());
    EXPECT_TRUE(equivalentToOriginal(Programs[I % 3],
                                     Response.find("ir")->asString()));
  }

  EXPECT_GT(Stats::get("server.validations_offloaded"), OffloadedBefore)
      << "validator pool configured but every check ran inline";
}

TEST(ServerIntegration, ValidateFlagToleratedOnV1Payloads) {
  // Back-compat: a hand-rolled v1 payload carrying `validate` is honored
  // (the field predates no semantics), and plain v1 payloads still work.
  ServerOptions Opts;
  Opts.TcpPort = 0;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;
  ASSERT_TRUE(Cl.sendPayload(
      R"({"schema":"lcm-request-v1","id":1,)"
      R"("ir":"block b0\n  x = a + b\n  y = a + b\n  exit\n",)"
      R"("validate":true})",
      Error))
      << Error;
  Value Response;
  ASSERT_TRUE(Cl.recvResponse(Response, Error)) << Error;
  EXPECT_EQ(statusOf(Response), "ok") << Response.dump();
  ASSERT_NE(Response.find("validated"), nullptr);
  EXPECT_TRUE(Response.find("validated")->asBool());

  // A Request that sets Validate stamps the v2 schema on the wire, so an
  // old server fails loudly instead of silently skipping the check.
  Request R = makeRequest(2, Programs[0]);
  R.Validate = true;
  const std::string Wire = requestToJson(R).dump(0);
  EXPECT_NE(Wire.find("lcm-request-v2"), std::string::npos) << Wire;
}

TEST(ServerIntegration, ValidationRefusesPoisonedCacheEntry) {
  // The checker, not the optimizer (or its cache), is the trusted
  // component: corrupt the cache entry behind a request's key and the
  // validate path must refuse to serve it.
  auto Cache = openCache("");
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.Service.Cache = Cache;
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);

  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;

  // Learn the key from an honest request, then poison the entry with a
  // well-formed but semantically different program (z flips + to -).
  Value First;
  ASSERT_TRUE(Cl.call(makeRequest(1, Programs[2]), First, Error)) << Error;
  ASSERT_EQ(statusOf(First), "ok") << First.dump();
  cache::Digest Key;
  ASSERT_TRUE(
      cache::Digest::fromHex(First.find("cache_key")->asString(), Key));
  cache::CacheEntry Poisoned;
  Poisoned.Ir = "block b0\n  x = a + b\n  y = a + b\n  z = x - y\n  exit\n";
  Cache->put(Key, Poisoned);

  Request R = makeRequest(2, Programs[2]);
  R.Validate = true;
  Value Response;
  ASSERT_TRUE(Cl.call(R, Response, Error)) << Error;
  EXPECT_EQ(statusOf(Response), "validation_failed") << Response.dump();
  EXPECT_TRUE(*Response.find("id") == Value::number(int64_t(2)));
  EXPECT_NE(Response.find("error"), nullptr);

  // Without validation the poisoned bytes sail through — exactly why the
  // serving-path check exists.
  Value Unchecked;
  ASSERT_TRUE(Cl.call(makeRequest(3, Programs[2]), Unchecked, Error))
      << Error;
  EXPECT_EQ(statusOf(Unchecked), "ok");
  EXPECT_EQ(Unchecked.find("ir")->asString(), Poisoned.Ir);
}

TEST(ServerIntegration, DiskCacheSurvivesServerRestart) {
  const std::string Dir =
      "/tmp/lcm_it_cache_" + std::to_string(::getpid());
  std::string Cleanup = "rm -rf '" + Dir + "'";
  int Ignored = std::system(Cleanup.c_str());
  (void)Ignored;

  std::string FirstIr, FirstKey;
  {
    ServerOptions Opts;
    Opts.TcpPort = 0;
    Opts.Service.Cache = openCache(Dir);
    RunningServer Srv(Opts);
    ASSERT_TRUE(Srv.Started);
    Client Cl;
    std::string Error;
    ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;
    Value Response;
    ASSERT_TRUE(Cl.call(makeRequest(1, Programs[1]), Response, Error))
        << Error;
    ASSERT_EQ(statusOf(Response), "ok") << Response.dump();
    FirstIr = Response.find("ir")->asString();
    FirstKey = Response.find("cache_key")->asString();
  } // Server drains; the entry is on disk.

  // A brand-new server over the same directory answers from the warm
  // cache on the very first request.
  ServerOptions Opts;
  Opts.TcpPort = 0;
  Opts.Service.Cache = openCache(Dir);
  RunningServer Srv(Opts);
  ASSERT_TRUE(Srv.Started);
  Client Cl;
  std::string Error;
  ASSERT_TRUE(Cl.connectTcp(Srv.S.tcpPort(), Error, 2000)) << Error;
  Value Response;
  ASSERT_TRUE(Cl.call(makeRequest(2, Programs[1]), Response, Error)) << Error;
  ASSERT_EQ(statusOf(Response), "ok") << Response.dump();
  EXPECT_TRUE(Response.find("cached")->asBool())
      << "first request after restart should hit the persisted entry";
  EXPECT_EQ(Response.find("ir")->asString(), FirstIr);
  EXPECT_EQ(Response.find("cache_key")->asString(), FirstKey);

  Ignored = std::system(Cleanup.c_str());
  (void)Ignored;
}

} // namespace
