//===- tests/local_cse_test.cpp - Local CSE precondition pass tests ------===//

#include "core/LocalCse.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

Function parse(const char *Source) {
  ParseResult R = parseFunction(Source);
  EXPECT_TRUE(R) << R.Error;
  return std::move(R.Fn);
}

TEST(LocalCse, EliminatesPlainReuse) {
  Function Fn = parse("block b0\n  x = a + b\n  y = a + b\n  exit\n");
  uint64_t N = runLocalCse(Fn);
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(Fn.countOperations(), 1u);
  std::string After = printFunction(Fn);
  // First occurrence computes into the temp; both dests copy from it.
  EXPECT_NE(After.find("cse.0 = a + b\n  x = cse.0\n  y = cse.0"),
            std::string::npos)
      << After;
}

TEST(LocalCse, SurvivesDeadHolder) {
  // The original destination is overwritten between use sites — the case a
  // value-numbering-free CSE misses.
  Function Fn = parse(
      "block b0\n  v = a + b\n  v = c\n  w = a + b\n  exit\n");
  uint64_t N = runLocalCse(Fn);
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(Fn.countOperations(), 1u);
  EXPECT_TRUE(isValidFunction(Fn));
}

TEST(LocalCse, RespectsKills) {
  Function Fn = parse(
      "block b0\n  x = a + b\n  a = 1\n  y = a + b\n  exit\n");
  EXPECT_EQ(runLocalCse(Fn), 0u);
  EXPECT_EQ(Fn.countOperations(), 2u);
}

TEST(LocalCse, SelfKillIsNotReusable) {
  Function Fn = parse("block b0\n  x = x + 1\n  y = x + 1\n  exit\n");
  EXPECT_EQ(runLocalCse(Fn), 0u)
      << "x = x + 1 kills x + 1 before the second occurrence";
}

TEST(LocalCse, DoesNotCrossBlocks) {
  Function Fn = parse(
      "block b0\n  x = a + b\n  goto b1\nblock b1\n  y = a + b\n  exit\n");
  EXPECT_EQ(runLocalCse(Fn), 0u) << "global redundancy is PRE's job";
}

TEST(LocalCse, ChainsOfReuses) {
  Function Fn = parse(
      "block b0\n  x = a + b\n  y = a + b\n  z = a + b\n  exit\n");
  EXPECT_EQ(runLocalCse(Fn), 2u);
  EXPECT_EQ(Fn.countOperations(), 1u);
}

TEST(LocalCse, PreservesSemantics) {
  const char *Source = R"(
block b0
  x = a + b
  v = a + b
  v = x * 2
  w = a + b
  a = w
  y = a + b
  z = a + b
  exit
)";
  Function Before = parse(Source);
  Function After = parse(Source);
  runLocalCse(After);
  EXPECT_TRUE(isValidFunction(After));

  FirstSuccessorOracle Oracle;
  Interpreter::Options Opts;
  std::vector<int64_t> Inputs(Before.numVars());
  for (size_t I = 0; I != Inputs.size(); ++I)
    Inputs[I] = 3 * int64_t(I) - 4;
  InterpResult A = Interpreter::run(Before, Inputs, Oracle, Opts);
  InterpResult B = Interpreter::run(After, Inputs, Oracle, Opts);
  for (size_t V = 0; V != Before.numVars(); ++V)
    EXPECT_EQ(A.Vars[V], B.Vars[V]) << Before.varName(VarId(V));
  EXPECT_LT(B.TotalEvals, A.TotalEvals);
}

TEST(LocalCse, IsIdempotent) {
  Function Fn = parse(
      "block b0\n  x = a + b\n  y = a + b\n  v = c * c\n  w = c * c\n  exit\n");
  EXPECT_GT(runLocalCse(Fn), 0u);
  std::string Once = printFunction(Fn);
  EXPECT_EQ(runLocalCse(Fn), 0u);
  EXPECT_EQ(printFunction(Fn), Once);
}

} // namespace
