//===- tests/request_queue_test.cpp - Bounded queue edge cases ------------===//
//
// Pins the admission-control contract of server/RequestQueue.h at the unit
// level (the integration test only observes it through socket responses):
//
// - FIFO order, producer never blocks, capacity enforced exactly;
// - close() refuses producers immediately but lets consumers drain every
//   item admitted before the close;
// - consumers blocked on an empty queue are woken by close() and exit;
// - a closed-and-drained queue keeps returning false (idempotent drain).
//
//===----------------------------------------------------------------------===//

#include "server/RequestQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using lcm::server::BoundedQueue;

namespace {

TEST(RequestQueue, FifoOrderAndCapacity) {
  BoundedQueue<int> Q(3);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_TRUE(Q.tryPush(3));
  EXPECT_FALSE(Q.tryPush(4)) << "capacity must be enforced exactly";
  EXPECT_EQ(Q.size(), 3u);

  int V = 0;
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1);
  // A pop frees a slot for the producer again.
  EXPECT_TRUE(Q.tryPush(4));
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 2);
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 3);
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 4);
  EXPECT_EQ(Q.size(), 0u);
}

TEST(RequestQueue, PushAfterCloseIsRefused) {
  BoundedQueue<int> Q(8);
  EXPECT_TRUE(Q.tryPush(1));
  Q.close();
  EXPECT_FALSE(Q.tryPush(2)) << "producers are refused from close() on";
  EXPECT_EQ(Q.size(), 1u);
}

TEST(RequestQueue, CloseLetsConsumersDrainAdmittedItems) {
  BoundedQueue<int> Q(8);
  for (int I = 0; I != 5; ++I)
    ASSERT_TRUE(Q.tryPush(I));
  Q.close();

  // Everything admitted before the close is still delivered, in order.
  int V = -1;
  for (int I = 0; I != 5; ++I) {
    ASSERT_TRUE(Q.pop(V));
    EXPECT_EQ(V, I);
  }
  // Closed and drained: pop reports exhaustion, repeatedly.
  EXPECT_FALSE(Q.pop(V));
  EXPECT_FALSE(Q.pop(V));
}

TEST(RequestQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> Q(4);
  constexpr int Consumers = 3;
  std::atomic<int> Exited{0};
  std::vector<std::thread> Pool;
  for (int I = 0; I != Consumers; ++I)
    Pool.emplace_back([&] {
      int V;
      // Blocks on the empty queue until close() wakes it.
      while (Q.pop(V)) {
      }
      Exited.fetch_add(1);
    });

  // Let the consumers reach the wait, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(Exited.load(), 0) << "consumers must block while open and empty";
  Q.close();
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Exited.load(), Consumers);
}

TEST(RequestQueue, ConcurrentProducersNeverExceedCapacity) {
  constexpr size_t Capacity = 4;
  BoundedQueue<int> Q(Capacity);
  std::atomic<int> Accepted{0}, Refused{0};

  std::vector<std::thread> Producers;
  for (int P = 0; P != 4; ++P)
    Producers.emplace_back([&] {
      for (int I = 0; I != 100; ++I) {
        if (Q.tryPush(I))
          Accepted.fetch_add(1);
        else
          Refused.fetch_add(1);
        EXPECT_LE(Q.size(), Capacity);
      }
    });

  std::atomic<bool> Stop{false};
  std::thread Consumer([&] {
    int V;
    while (!Stop.load()) {
      while (Q.pop(V)) {
      }
    }
  });

  for (std::thread &T : Producers)
    T.join();
  // Producers never blocked: every attempt resolved to accept or refuse.
  EXPECT_EQ(Accepted.load() + Refused.load(), 400);
  EXPECT_GT(Accepted.load(), 0);

  Q.close(); // Unblocks the consumer's pop().
  Stop.store(true);
  Consumer.join();
}

} // namespace
