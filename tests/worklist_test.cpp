//===- tests/worklist_test.cpp - Worklist vs round-robin solver agreement -===//

#include "analysis/LocalProperties.h"
#include "dataflow/Dataflow.h"
#include "workload/RandomCfg.h"
#include "workload/StructuredGen.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

std::vector<GenKill> availabilityTransfers(const Function &Fn,
                                           const LocalProperties &LP) {
  std::vector<GenKill> T(Fn.numBlocks());
  for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
    T[B].Gen = LP.comp(B);
    T[B].Kill = complement(LP.transp(B));
  }
  return T;
}

std::vector<GenKill> anticipabilityTransfers(const Function &Fn,
                                             const LocalProperties &LP) {
  std::vector<GenKill> T(Fn.numBlocks());
  for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
    T[B].Gen = LP.antloc(B);
    T[B].Kill = complement(LP.transp(B));
  }
  return T;
}

class WorklistAgreement : public testing::TestWithParam<unsigned> {};

TEST_P(WorklistAgreement, SameFixpointAllFourCombinations) {
  Function Fn = [&] {
    if (GetParam() % 2 == 0) {
      StructuredGenOptions Opts;
      Opts.Seed = GetParam() + 1;
      return generateStructured(Opts);
    }
    RandomCfgOptions Opts;
    Opts.Seed = GetParam() + 1;
    Opts.NumBlocks = 6 + GetParam() % 20;
    return generateRandomCfg(Opts);
  }();
  LocalProperties LP(Fn);
  const BitVector Empty(LP.numExprs());

  struct Case {
    Direction Dir;
    Meet M;
    std::vector<GenKill> Transfers;
  };
  std::vector<Case> Cases;
  Cases.push_back({Direction::Forward, Meet::Intersection,
                   availabilityTransfers(Fn, LP)});
  Cases.push_back(
      {Direction::Forward, Meet::Union, availabilityTransfers(Fn, LP)});
  Cases.push_back({Direction::Backward, Meet::Intersection,
                   anticipabilityTransfers(Fn, LP)});
  Cases.push_back(
      {Direction::Backward, Meet::Union, anticipabilityTransfers(Fn, LP)});

  for (const Case &C : Cases) {
    DataflowResult RoundRobin =
        solveGenKill(Fn, C.Dir, C.M, C.Transfers, Empty);
    DataflowResult Worklist =
        solveGenKillWorklist(Fn, C.Dir, C.M, C.Transfers, Empty);
    for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
      EXPECT_EQ(RoundRobin.In[B], Worklist.In[B])
          << "seed " << GetParam() << " block " << B;
      EXPECT_EQ(RoundRobin.Out[B], Worklist.Out[B])
          << "seed " << GetParam() << " block " << B;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Solvers, WorklistAgreement,
                         testing::Range(0u, 24u));

TEST(Worklist, VisitsNoMoreThanRoundRobinOnChains) {
  // A long chain: round-robin revisits every block per pass; the worklist
  // converges after one sweep plus no re-pushes.
  Function Fn("chain");
  BlockId Prev = Fn.addBlock();
  for (int I = 0; I != 63; ++I) {
    BlockId Next = Fn.addBlock();
    Fn.addEdge(Prev, Next);
    Prev = Next;
  }
  LocalProperties LP(Fn);
  auto Transfers = availabilityTransfers(Fn, LP);
  BitVector Empty(LP.numExprs());
  DataflowResult RR = solveGenKill(Fn, Direction::Forward,
                                   Meet::Intersection, Transfers, Empty);
  DataflowResult WL = solveGenKillWorklist(
      Fn, Direction::Forward, Meet::Intersection, Transfers, Empty);
  EXPECT_LE(WL.Stats.NodeVisits, RR.Stats.NodeVisits);
}

} // namespace
