//===- tests/local_properties_test.cpp - ANTLOC/COMP/TRANSP tests --------===//

#include "analysis/LocalProperties.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

/// Parses and returns the function plus the id of the expression whose
/// text is \p ExprToFind (must exist).
struct Fixture {
  Function Fn;
  explicit Fixture(const char *Source) {
    ParseResult R = parseFunction(Source);
    EXPECT_TRUE(R) << R.Error;
    Fn = std::move(R.Fn);
  }

  ExprId expr(const char *Text) {
    for (ExprId E = 0; E != Fn.exprs().size(); ++E)
      if (Fn.exprText(E) == Text)
        return E;
    ADD_FAILURE() << "no expression '" << Text << "'";
    return InvalidExpr;
  }
};

TEST(LocalProperties, PlainOccurrence) {
  Fixture F("block b0\n  x = a + b\n  exit\n");
  LocalProperties LP(F.Fn);
  ExprId E = F.expr("a + b");
  EXPECT_TRUE(LP.antloc(0).test(E));
  EXPECT_TRUE(LP.comp(0).test(E));
  EXPECT_TRUE(LP.transp(0).test(E));
}

TEST(LocalProperties, KillBeforeOccurrence) {
  Fixture F("block b0\n  a = 1\n  x = a + b\n  exit\n");
  LocalProperties LP(F.Fn);
  ExprId E = F.expr("a + b");
  EXPECT_FALSE(LP.antloc(0).test(E)) << "occurrence is not upward exposed";
  EXPECT_TRUE(LP.comp(0).test(E));
  EXPECT_FALSE(LP.transp(0).test(E));
}

TEST(LocalProperties, KillAfterOccurrence) {
  Fixture F("block b0\n  x = a + b\n  a = 1\n  exit\n");
  LocalProperties LP(F.Fn);
  ExprId E = F.expr("a + b");
  EXPECT_TRUE(LP.antloc(0).test(E));
  EXPECT_FALSE(LP.comp(0).test(E)) << "occurrence is not downward exposed";
  EXPECT_FALSE(LP.transp(0).test(E));
}

TEST(LocalProperties, TwoOccurrencesAroundKill) {
  // Both ANTLOC and COMP with TRANSP false: the paper's dual-exposure case.
  Fixture F("block b0\n  x = a + b\n  a = 1\n  y = a + b\n  exit\n");
  LocalProperties LP(F.Fn);
  ExprId E = F.expr("a + b");
  EXPECT_TRUE(LP.antloc(0).test(E));
  EXPECT_TRUE(LP.comp(0).test(E));
  EXPECT_FALSE(LP.transp(0).test(E));
}

TEST(LocalProperties, SelfKillingOccurrence) {
  // x = x + 1 computes x+1 and immediately kills it.
  Fixture F("block b0\n  x = x + 1\n  exit\n");
  LocalProperties LP(F.Fn);
  ExprId E = F.expr("x + 1");
  EXPECT_TRUE(LP.antloc(0).test(E));
  EXPECT_FALSE(LP.comp(0).test(E));
  EXPECT_FALSE(LP.transp(0).test(E));
}

TEST(LocalProperties, CopiesKillToo) {
  Fixture F("block b0\n  x = a + b\n  a = c\n  exit\n");
  LocalProperties LP(F.Fn);
  ExprId E = F.expr("a + b");
  EXPECT_FALSE(LP.transp(0).test(E));
  EXPECT_FALSE(LP.comp(0).test(E));
}

TEST(LocalProperties, ConstOperandsAreNeverKilled) {
  Fixture F("block b0\n  x = 2 + 3\n  y = 9\n  exit\n");
  LocalProperties LP(F.Fn);
  ExprId E = F.expr("2 + 3");
  EXPECT_TRUE(LP.antloc(0).test(E));
  EXPECT_TRUE(LP.comp(0).test(E));
  EXPECT_TRUE(LP.transp(0).test(E));
}

TEST(LocalProperties, DestOverlapOnlyKillsReaders) {
  // Writing x kills x+1 but not a+b.
  Fixture F("block b0\n  x = a + b\n  y = x + 1\n  exit\n");
  LocalProperties LP(F.Fn);
  ExprId AB = F.expr("a + b");
  ExprId X1 = F.expr("x + 1");
  EXPECT_TRUE(LP.transp(0).test(AB));
  EXPECT_FALSE(LP.transp(0).test(X1)) << "x is written in the block";
  EXPECT_FALSE(LP.antloc(0).test(X1)) << "x+1 reads x after x's def";
  EXPECT_TRUE(LP.comp(0).test(X1));
  EXPECT_TRUE(LP.comp(0).test(AB));
}

TEST(LocalProperties, EmptyBlocksAreFullyTransparent) {
  Fixture F("block b0\n  x = a + b\n  goto b1\nblock b1\n  goto b2\n"
            "block b2\n  exit\n");
  LocalProperties LP(F.Fn);
  ExprId E = F.expr("a + b");
  EXPECT_TRUE(LP.transp(1).test(E));
  EXPECT_FALSE(LP.antloc(1).test(E));
  EXPECT_FALSE(LP.comp(1).test(E));
}

TEST(LocalProperties, UnaryExpressions) {
  Fixture F("block b0\n  x = - a\n  a = 1\n  y = - a\n  exit\n");
  LocalProperties LP(F.Fn);
  ExprId E = F.expr("- a");
  EXPECT_TRUE(LP.antloc(0).test(E));
  EXPECT_TRUE(LP.comp(0).test(E));
  EXPECT_FALSE(LP.transp(0).test(E));
}

} // namespace
