//===- tests/postdominators_test.cpp - Post-dominator tree tests ---------===//

#include "analysis/ExprDataflow.h"
#include "graph/PostDominators.h"
#include "ir/Parser.h"
#include "workload/PaperExamples.h"
#include "workload/RandomCfg.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

Function parse(const char *Source) {
  ParseResult R = parseFunction(Source);
  EXPECT_TRUE(R) << R.Error;
  return std::move(R.Fn);
}

TEST(PostDominators, DiamondJoinPostDominatesArms) {
  Function Fn = parse(R"(
block e
  if c then l else r
block l
  goto j
block r
  goto j
block j
  goto x
block x
  exit
)");
  PostDominators PDom(Fn);
  BlockId E = 0, L = 1, R = 2, J = 3, X = 4;
  EXPECT_EQ(PDom.ipdom(L), J);
  EXPECT_EQ(PDom.ipdom(R), J);
  EXPECT_EQ(PDom.ipdom(E), J) << "the join, not an arm";
  EXPECT_EQ(PDom.ipdom(J), X);
  EXPECT_EQ(PDom.ipdom(X), X);
  EXPECT_TRUE(PDom.postDominates(X, E));
  EXPECT_TRUE(PDom.postDominates(J, L));
  EXPECT_FALSE(PDom.postDominates(L, E));
  EXPECT_TRUE(PDom.postDominates(J, J));
  EXPECT_EQ(PDom.depth(X), 0u);
  EXPECT_EQ(PDom.depth(E), 2u);
}

TEST(PostDominators, LoopExitPostDominatesBody) {
  Function Fn = makeMotivatingExample();
  PostDominators PDom(Fn);
  BlockId Done = Fn.exit();
  for (BlockId B = 0; B != Fn.numBlocks(); ++B)
    EXPECT_TRUE(PDom.postDominates(Done, B));
}

TEST(PostDominators, EveryBlockBelowExitOnRandomGraphs) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    RandomCfgOptions Opts;
    Opts.Seed = Seed;
    Function Fn = generateRandomCfg(Opts);
    PostDominators PDom(Fn);
    for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
      EXPECT_TRUE(PDom.postDominates(Fn.exit(), B)) << "seed " << Seed;
      if (B != Fn.exit()) {
        EXPECT_TRUE(PDom.postDominates(PDom.ipdom(B), B)) << "seed " << Seed;
        EXPECT_NE(PDom.ipdom(B), B) << "seed " << Seed;
      }
    }
  }
}

/// Cross-check with anticipability: if block D contains an upward-exposed
/// computation of e, D post-dominates B, and no block on any B ~> D prefix
/// kills e, then e is anticipated at B.  We verify the contrapositive-free
/// special case where *no block in the whole function* kills e: then
/// ANTIN[B] must hold whenever such a D post-dominates B.
TEST(PostDominators, AgreesWithAnticipabilityWithoutKills) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    RandomCfgOptions Opts;
    Opts.Seed = Seed + 40;
    Opts.NumBlocks = 10;
    Function Fn = generateRandomCfg(Opts);
    PostDominators PDom(Fn);
    LocalProperties LP(Fn);
    DataflowResult Ant = computeAnticipability(Fn, LP);

    for (ExprId E = 0; E != Fn.exprs().size(); ++E) {
      // Only expressions never killed anywhere.
      bool Killed = false;
      for (BlockId B = 0; B != Fn.numBlocks(); ++B)
        Killed |= !LP.transp(B).test(E);
      if (Killed)
        continue;
      for (BlockId D = 0; D != Fn.numBlocks(); ++D) {
        if (!LP.antloc(D).test(E))
          continue;
        for (BlockId B = 0; B != Fn.numBlocks(); ++B)
          if (PDom.postDominates(D, B))
            EXPECT_TRUE(Ant.In[B].test(E))
                << "seed " << Seed << " expr " << Fn.exprText(E);
      }
    }
  }
}

} // namespace
