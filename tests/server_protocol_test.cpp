//===- tests/server_protocol_test.cpp - Wire protocol unit tests ---------===//
//
// Pins the lcm-request-v1 / lcm-response-v1 wire contract without any
// sockets: frame encode/decode under byte-by-byte delivery, the poisoned
// stream after an invalid length prefix, request-document validation with
// id recovery, the Service's structured error statuses, and the bounded
// queue's backpressure/drain semantics.  The socket layer on top is
// covered by server_integration_test.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "server/RequestQueue.h"
#include "server/Service.h"
#include "specpre/EdgeProfile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

using namespace lcm;
using namespace lcm::server;
using json::Value;

namespace {

const char *SmallIr = "block b0\n  x = a + b\n  y = a + b\n  exit\n";

std::string statusOf(const Value &Response) {
  const Value *S = Response.find("status");
  return S && S->isString() ? S->asString() : "(missing)";
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(Framing, RoundTrip) {
  std::string Encoded = encodeFrame("hello");
  ASSERT_EQ(Encoded.size(), 9u);
  EXPECT_EQ(Encoded.substr(0, 4), std::string("\x00\x00\x00\x05", 4));

  FrameReader R;
  R.feed(Encoded.data(), Encoded.size());
  std::string Frame, Error;
  ASSERT_EQ(R.next(Frame, Error), FrameReader::Status::Frame);
  EXPECT_EQ(Frame, "hello");
  EXPECT_EQ(R.next(Frame, Error), FrameReader::Status::NeedMore);
}

TEST(Framing, ByteByByteDelivery) {
  std::string Encoded = encodeFrame("abc") + encodeFrame("defgh");
  FrameReader R;
  std::vector<std::string> Frames;
  std::string Frame, Error;
  for (char C : Encoded) {
    R.feed(&C, 1);
    while (R.next(Frame, Error) == FrameReader::Status::Frame)
      Frames.push_back(Frame);
  }
  ASSERT_EQ(Frames.size(), 2u);
  EXPECT_EQ(Frames[0], "abc");
  EXPECT_EQ(Frames[1], "defgh");
}

TEST(Framing, ManyFramesOneBuffer) {
  std::string Stream;
  for (int I = 0; I != 500; ++I)
    Stream += encodeFrame("payload-" + std::to_string(I));
  FrameReader R;
  // Two halves, exercising the internal compaction path.
  R.feed(Stream.data(), Stream.size() / 2);
  std::string Frame, Error;
  int Count = 0;
  while (R.next(Frame, Error) == FrameReader::Status::Frame) {
    EXPECT_EQ(Frame, "payload-" + std::to_string(Count));
    ++Count;
  }
  R.feed(Stream.data() + Stream.size() / 2, Stream.size() - Stream.size() / 2);
  while (R.next(Frame, Error) == FrameReader::Status::Frame) {
    EXPECT_EQ(Frame, "payload-" + std::to_string(Count));
    ++Count;
  }
  EXPECT_EQ(Count, 500);
}

TEST(Framing, ZeroLengthPoisons) {
  FrameReader R;
  std::string Zero(4, '\0');
  R.feed(Zero.data(), Zero.size());
  std::string Frame, Error;
  ASSERT_EQ(R.next(Frame, Error), FrameReader::Status::Error);
  EXPECT_NE(Error.find("empty frame"), std::string::npos);
  // The stream stays poisoned even if valid bytes follow.
  std::string Good = encodeFrame("x");
  R.feed(Good.data(), Good.size());
  EXPECT_EQ(R.next(Frame, Error), FrameReader::Status::Error);
}

TEST(Framing, OversizeLengthPoisonsWithoutBuffering) {
  FrameReader R(/*MaxFrameBytes=*/16);
  std::string Huge = encodeFrame(std::string(17, 'x'));
  R.feed(Huge.data(), 4); // Length prefix alone is enough to reject.
  std::string Frame, Error;
  ASSERT_EQ(R.next(Frame, Error), FrameReader::Status::Error);
  EXPECT_NE(Error.find("exceeds cap"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Request documents
//===----------------------------------------------------------------------===//

TEST(RequestDoc, RoundTrip) {
  Request R;
  R.Id = Value::number(int64_t(42));
  R.Ir = SmallIr;
  R.Pipeline = "lcse,lcm";
  R.DeadlineMs = 250;
  R.Check = true;
  R.WantReport = true;
  RequestParse P = parseRequest(requestToJson(R).dump(0));
  ASSERT_TRUE(P) << P.Error;
  EXPECT_TRUE(P.R.Id == R.Id);
  EXPECT_EQ(P.R.Ir, R.Ir);
  EXPECT_EQ(P.R.Pipeline, R.Pipeline);
  EXPECT_EQ(P.R.DeadlineMs, 250);
  EXPECT_TRUE(P.R.Check);
  EXPECT_TRUE(P.R.WantReport);
}

TEST(RequestDoc, RejectsGarbage) {
  EXPECT_FALSE(parseRequest("not json at all"));
  EXPECT_FALSE(parseRequest("[1,2,3]"));
  EXPECT_FALSE(parseRequest("{}"));
  EXPECT_FALSE(parseRequest(R"({"schema":"wrong-schema","ir":"x"})"));
  EXPECT_FALSE(parseRequest(R"({"schema":"lcm-request-v1"})"));
  EXPECT_FALSE(parseRequest(R"({"schema":"lcm-request-v1","ir":7})"));
  EXPECT_FALSE(parseRequest(
      R"({"schema":"lcm-request-v1","ir":"x","deadline_ms":-5})"));
  EXPECT_FALSE(parseRequest(
      R"({"schema":"lcm-request-v1","ir":"x","check":"yes"})"));
  EXPECT_FALSE(parseRequest(
      R"({"schema":"lcm-request-v1","ir":"x","id":{"a":1}})"));
}

TEST(RequestDoc, RecoversIdFromInvalidRequests) {
  // A bad request that still names an id: the error response must be able
  // to echo it so the client can correlate.
  RequestParse P = parseRequest(R"({"id":"req-9","schema":"nope"})");
  ASSERT_FALSE(P);
  EXPECT_TRUE(P.Id == Value::str("req-9"));
}

TEST(RequestDoc, V3ProfileRoundTrips) {
  json::ParseResult Profile = json::parse(
      R"({"schema":"lcm-profile-v1",)"
      R"("edges":[{"from":"b0","to":"b1","count":7}]})");
  ASSERT_TRUE(Profile.Ok);

  Request R;
  R.Id = Value::str("p1");
  R.Ir = SmallIr;
  R.Profile = Profile.V;
  R.ProfileMode = "skewed";
  Value Doc = requestToJson(R);
  EXPECT_EQ(Doc.find("schema")->asString(), RequestSchemaV3);

  RequestParse P = parseRequest(Doc.dump(0));
  ASSERT_TRUE(P) << P.Error;
  ASSERT_TRUE(P.R.Profile.isObject());
  EXPECT_TRUE(P.R.Profile == Profile.V);
  EXPECT_EQ(P.R.ProfileMode, "skewed");
}

TEST(RequestDoc, SchemaLadderPicksLowestCoveringVersion) {
  // Clients emit the lowest schema that expresses the request, so old
  // servers keep accepting requests that don't use new fields.
  Request R;
  R.Ir = SmallIr;
  EXPECT_EQ(requestToJson(R).find("schema")->asString(), RequestSchema);
  R.Validate = true;
  EXPECT_EQ(requestToJson(R).find("schema")->asString(), RequestSchemaV2);
  R.Profile = json::Value::object();
  EXPECT_EQ(requestToJson(R).find("schema")->asString(), RequestSchemaV3);
}

TEST(RequestDoc, V3Validation) {
  // The v3 schema is accepted even without the new fields...
  EXPECT_TRUE(parseRequest(
      R"({"schema":"lcm-request-v3","ir":"block b0\n  exit\n"})"));
  // ...but the new fields are type-checked at the protocol layer.
  EXPECT_FALSE(parseRequest(
      R"({"schema":"lcm-request-v3","ir":"x","profile":7})"));
  EXPECT_FALSE(parseRequest(
      R"({"schema":"lcm-request-v3","ir":"x","profile":[1]})"));
  EXPECT_FALSE(parseRequest(
      R"({"schema":"lcm-request-v3","ir":"x","profile_mode":3})"));
}

TEST(ResponseDoc, ErrorEnvelope) {
  Value R = makeErrorResponse(Value::str("abc"), Status::Overloaded,
                              "queue full");
  EXPECT_EQ(statusOf(R), "overloaded");
  EXPECT_TRUE(*R.find("id") == Value::str("abc"));
  EXPECT_EQ(R.find("error")->asString(), "queue full");
  EXPECT_EQ(R.find("schema")->asString(), "lcm-response-v1");
}

//===----------------------------------------------------------------------===//
// Service: every failure mode is a structured status
//===----------------------------------------------------------------------===//

std::string handleStatus(const Service &S, const std::string &Payload) {
  return statusOf(S.handle(Payload));
}

TEST(Service, OptimizesAndChecks) {
  Service S;
  Request R;
  R.Id = Value::number(int64_t(1));
  R.Ir = SmallIr;
  R.Check = true;
  Value Response = S.handle(requestToJson(R).dump(0));
  ASSERT_EQ(statusOf(Response), "ok");
  EXPECT_TRUE(*Response.find("id") == R.Id);
  EXPECT_TRUE(Response.find("checked")->asBool());
  // LCSE must have removed the redundant `a + b`.
  EXPECT_GE(Response.find("changes")->asInt(), 1);
  const Value *Ir = Response.find("ir");
  ASSERT_TRUE(Ir && Ir->isString());
  EXPECT_NE(Ir->asString().find("block"), std::string::npos);
}

TEST(Service, EmbedsRunReport) {
  Service S;
  Request R;
  R.Ir = SmallIr;
  R.WantReport = true;
  Value Response = S.handle(requestToJson(R).dump(0));
  ASSERT_EQ(statusOf(Response), "ok");
  const Value *Report = Response.find("report");
  ASSERT_TRUE(Report && Report->isObject());
  EXPECT_EQ(Report->find("schema")->asString(), "lcm-run-report-v1");
}

TEST(Service, StructuredErrors) {
  Service S;
  EXPECT_EQ(handleStatus(S, "{{{"), "bad_request");
  EXPECT_EQ(handleStatus(
                S, R"({"schema":"lcm-request-v1","ir":"block b0\n  what\n"})"),
            "parse_error");
  EXPECT_EQ(handleStatus(S, R"({"schema":"lcm-request-v1","ir":"block b0)"
                            R"(\n  exit\n","pipeline":"no-such-pass"})"),
            "bad_request");
}

TEST(Service, LimitsStatusIsDistinctFromParseError) {
  ServiceConfig Config;
  Config.Limits.MaxBlocks = 2;
  Service S(Config);
  Request R;
  R.Ir = "block b0\n  goto b1\nblock b1\n  goto b2\nblock b2\n  exit\n";
  Value Response = S.handle(requestToJson(R).dump(0));
  EXPECT_EQ(statusOf(Response), "limits");
  EXPECT_NE(Response.find("error")->asString().find("limit:"),
            std::string::npos);
}

TEST(Service, DeadlineZeroCancelsImmediately) {
  Service S;
  Request R;
  R.Ir = SmallIr;
  R.DeadlineMs = 0; // Pre-expired token: cancelled before the first pass.
  Value Response = S.handle(requestToJson(R).dump(0));
  EXPECT_EQ(statusOf(Response), "deadline_exceeded");
}

TEST(Service, TestSleepIgnoredUnlessEnabled) {
  // With test options off, a test_sleep_ms request must not stall.
  Service S;
  Request R;
  R.Ir = SmallIr;
  R.TestSleepMs = 60'000;
  const auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(statusOf(S.handle(requestToJson(R).dump(0))), "ok");
  EXPECT_LT(std::chrono::steady_clock::now() - Start,
            std::chrono::seconds(10));
}

TEST(Service, SpeculativeRequestAttestsStrategy) {
  // The rare-kill regime of docs/SPECPRE.md: with a profile and a specpre
  // pipeline the server must attest `placement_strategy: "speculative"`;
  // the same pipeline without a profile is classic LCM by construction.
  const char *LoopIr =
      "block entry\n  goto loop\n"
      "block loop\n  y = a + b\n  if p then hot else cold\n"
      "block hot\n  u = y + k\n  goto latch\n"
      "block cold\n  a = a * 2\n  goto latch\n"
      "block latch\n  if q then loop else done\n"
      "block done\n  exit\n";
  json::ParseResult Profile = json::parse(
      R"({"schema":"lcm-profile-v1","edges":[
            {"from":"entry","to":"loop","count":1},
            {"from":"loop","to":"hot","count":900},
            {"from":"loop","to":"cold","count":100},
            {"from":"hot","to":"latch","count":900},
            {"from":"cold","to":"latch","count":100},
            {"from":"latch","to":"loop","count":999},
            {"from":"latch","to":"done","count":1}]})");
  ASSERT_TRUE(Profile.Ok);

  Service S;
  Request R;
  R.Ir = LoopIr;
  R.Pipeline = "lcse,specpre";
  R.Profile = Profile.V;
  R.ProfileMode = "skewed";
  R.ServerInfo = true;
  Value Response = S.handle(requestToJson(R).dump(0));
  ASSERT_EQ(statusOf(Response), "ok");
  const Value *Srv = Response.find("server");
  ASSERT_TRUE(Srv && Srv->isObject());
  EXPECT_EQ(Srv->find("placement_strategy")->asString(), "speculative");
  EXPECT_EQ(Srv->find("profile_mode")->asString(), "skewed");
  // Speculation fired: the loop body's a+b became a copy, so the served
  // IR differs from what the unprofiled pipeline produces.
  Request Unprofiled;
  Unprofiled.Ir = LoopIr;
  Unprofiled.Pipeline = "lcse,specpre";
  Unprofiled.ServerInfo = true;
  Value Classic = S.handle(requestToJson(Unprofiled).dump(0));
  ASSERT_EQ(statusOf(Classic), "ok");
  EXPECT_EQ(Classic.find("server")->find("placement_strategy")->asString(),
            "classic");
  EXPECT_NE(Response.find("ir")->asString(), Classic.find("ir")->asString());
}

TEST(Service, CheckedRequestsEmitMeasuredProfile) {
  // check:true re-executes the original, so the traversal counts come for
  // free; the service must surface them as a consumable `profile_out`.
  const char *LoopIr =
      "block entry\n  i = 5\n  goto loop\n"
      "block loop\n  y = a + b\n  i = i - 1\n  c = i > 0\n"
      "  if c then loop else done\n"
      "block done\n  exit\n";
  ServiceConfig Config;
  Config.Cache =
      std::make_shared<cache::ResultCache>(cache::ResultCacheConfig());
  std::string Error;
  ASSERT_TRUE(Config.Cache->open(Error)) << Error;
  Service S(Config);
  Request R;
  R.Ir = LoopIr;
  R.Check = true;
  Value Response = S.handle(requestToJson(R).dump(0));
  ASSERT_EQ(statusOf(Response), "ok");
  const Value *Prof = Response.find("profile_out");
  ASSERT_TRUE(Prof && Prof->isObject());
  EXPECT_EQ(Prof->find("schema")->asString(), "lcm-profile-v1");
  specpre::ProfileParse Parsed = specpre::parseProfile(*Prof);
  ASSERT_TRUE(Parsed) << Parsed.Error;
  EXPECT_FALSE(Parsed.P.empty());
  // The loop executed: some back edge carries more than one traversal.
  uint64_t MaxCount = 0;
  for (const specpre::ProfiledEdge &E : Parsed.P.Edges)
    MaxCount = std::max(MaxCount, E.Count);
  EXPECT_GT(MaxCount, 1u);

  // A cached replay of the identical request still carries the profile.
  Value Replay = S.handle(requestToJson(R).dump(0));
  ASSERT_EQ(statusOf(Replay), "ok");
  ASSERT_TRUE(Replay.find("cached") && Replay.find("cached")->asBool());
  const Value *ReplayProf = Replay.find("profile_out");
  ASSERT_TRUE(ReplayProf && ReplayProf->isObject());
  EXPECT_EQ(ReplayProf->dump(), Prof->dump());

  // Unchecked requests measure nothing and must not invent a profile.
  Request Plain;
  Plain.Ir = LoopIr;
  Value Unchecked = S.handle(requestToJson(Plain).dump(0));
  ASSERT_EQ(statusOf(Unchecked), "ok");
  EXPECT_EQ(Unchecked.find("profile_out"), nullptr);

  // Closing the loop: the measured profile feeds a speculative request.
  Request Spec;
  Spec.Ir = LoopIr;
  Spec.Pipeline = "lcse,specpre";
  Spec.Profile = *Prof;
  Spec.ServerInfo = true;
  Value SpecResponse = S.handle(requestToJson(Spec).dump(0));
  ASSERT_EQ(statusOf(SpecResponse), "ok");
  EXPECT_EQ(
      SpecResponse.find("server")->find("placement_strategy")->asString(),
      "speculative");
}

TEST(Service, DeferredValidationCompletesViaFinish) {
  Service S;
  Request R;
  R.Ir = SmallIr;
  R.Validate = true;
  Service::PendingValidation Pending;
  Value Deferred = S.handle(requestToJson(R).dump(0), Pending);
  // The pipeline ran, but the equivalence check is handed back to the
  // caller: no response yet, all state parked in Pending.
  EXPECT_TRUE(Deferred.isNull());
  ASSERT_TRUE(Pending.Active);
  EXPECT_FALSE(Pending.ServedIr.empty());
  Value Finished = S.finishValidation(std::move(Pending));
  ASSERT_EQ(statusOf(Finished), "ok");
  EXPECT_TRUE(Finished.find("validated")->asBool());

  // Requests that don't validate complete inline through the same
  // overload, leaving the out-param inert.
  Request Plain;
  Plain.Ir = SmallIr;
  Service::PendingValidation Unused;
  Value Direct = S.handle(requestToJson(Plain).dump(0), Unused);
  ASSERT_EQ(statusOf(Direct), "ok");
  EXPECT_FALSE(Unused.Active);
}

TEST(Service, MalformedProfileIsBadRequest) {
  Service S;
  Request R;
  R.Ir = SmallIr;
  R.Profile = json::Value::object(); // Missing schema/edges.
  Value Response = S.handle(requestToJson(R).dump(0));
  EXPECT_EQ(statusOf(Response), "bad_request");
  EXPECT_NE(Response.find("error")->asString().find("profile"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// BoundedQueue
//===----------------------------------------------------------------------===//

TEST(BoundedQueue, BackpressureAtCapacity) {
  BoundedQueue<int> Q(2);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_FALSE(Q.tryPush(3)); // Full: immediate refusal, no blocking.
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1);
  EXPECT_TRUE(Q.tryPush(3)); // Space again.
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> Q(8);
  ASSERT_TRUE(Q.tryPush(1));
  ASSERT_TRUE(Q.tryPush(2));
  Q.close();
  EXPECT_FALSE(Q.tryPush(3)); // Closed to producers...
  int V = 0;
  EXPECT_TRUE(Q.pop(V)); // ...but consumers still drain what was admitted.
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 2);
  EXPECT_FALSE(Q.pop(V)); // Drained + closed: consumer exit signal.
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> Q(4);
  std::thread Consumer([&] {
    int V = 0;
    EXPECT_FALSE(Q.pop(V)); // Blocks until close, then exits empty.
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Q.close();
  Consumer.join();
}

} // namespace
