//===- tests/support_test.cpp - Rng, Stats, Table tests -------------------===//

#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng A(123), B(123), C(124);
  for (int I = 0; I != 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    (void)C.next();
  }
  Rng A2(123), C2(124);
  EXPECT_NE(A2.next(), C2.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Rng, RangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, ChanceExtremes) {
  Rng R(3);
  for (int I = 0; I != 50; ++I) {
    EXPECT_TRUE(R.chance(1, 1));
    EXPECT_FALSE(R.chance(0, 5));
  }
}

TEST(Rng, ReseedRestartsSequence) {
  Rng R(42);
  uint64_t First = R.next();
  R.next();
  R.reseed(42);
  EXPECT_EQ(R.next(), First);
}

TEST(Stats, BumpAndGet) {
  Stats::resetAll();
  EXPECT_EQ(Stats::get("x"), 0u);
  Stats::bump("x");
  Stats::bump("x", 4);
  EXPECT_EQ(Stats::get("x"), 5u);
  Stats::bump("y", 2);
  auto All = Stats::all();
  EXPECT_EQ(All.size(), 2u);
  Stats::resetAll();
  EXPECT_EQ(Stats::get("x"), 0u);
}

TEST(Table, RendersAlignedColumns) {
  Table T({"name", "count"});
  T.row().add("alpha").add(uint64_t(5));
  T.row().add("b").add(uint64_t(12345));
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("12345"), std::string::npos);
  // Header separator present.
  EXPECT_NE(Out.find("-+-"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(Table, NumericFormatting) {
  Table T({"v"});
  T.row().add(3.14159, 3);
  T.row().add(int64_t(-7));
  std::string Out = T.render();
  EXPECT_NE(Out.find("3.142"), std::string::npos);
  EXPECT_NE(Out.find("-7"), std::string::npos);
}

} // namespace
