//===- tests/gvn_test.cpp - Value numbering front end ---------------------===//
//
// Unit coverage for the gvn pass (commutative canonicalization, copy-chain
// congruence, the @mem load/store model) plus the randomized
// GVN-vs-lexical harness: over generated corpora — memory kernels
// included — `lcse,gvn,lcm` must preserve semantics against the
// interpreter oracle (name-aligned on the original variables) and never
// evaluate more than lexical `lcse,lcm`.
//
//===----------------------------------------------------------------------===//

#include "baseline/Cleanup.h"
#include "driver/Pipeline.h"
#include "gvn/Gvn.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "metrics/Cost.h"
#include "workload/AddressGen.h"
#include "workload/RandomCfg.h"
#include "workload/StructuredGen.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

Function parse(const std::string &Text) {
  ParseResult P = parseFunction(Text);
  EXPECT_TRUE(P.Ok) << P.Error;
  return std::move(P.Fn);
}

/// Distinct expression ids referenced by operations.
size_t distinctExprs(const Function &Fn) {
  std::vector<char> Seen(Fn.exprs().size(), 0);
  size_t N = 0;
  for (const BasicBlock &B : Fn.blocks())
    for (const Instr &I : B.instrs())
      if (I.isOperation() && !Seen[I.exprId()]) {
        Seen[I.exprId()] = 1;
        ++N;
      }
  return N;
}

InterpResult runSeeded(const Function &Fn, uint64_t Seed, size_t NumInputVars,
                       uint32_t OriginalBlockCount) {
  RandomOracle Oracle(Seed ^ 0x94d049bb133111ebULL);
  Interpreter::Options Opts;
  Opts.MaxOriginalBlockVisits = 3000;
  Opts.OriginalBlockCount = OriginalBlockCount;
  return Interpreter::run(Fn, makeSeededInputs(Seed, NumInputVars), Oracle,
                          Opts);
}

TEST(GvnUnit, CommutativeOperandsMerge) {
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  t1 = x + y\n"
                      "  t2 = y + x\n"
                      "  t3 = x * y\n"
                      "  t4 = y * x\n"
                      "  exit\n");
  gvn::ValueNumbering VN;
  gvn::GvnReport R = gvn::runGvn(Fn, &VN);
  EXPECT_TRUE(isValidFunction(Fn)) << printFunction(Fn);
  EXPECT_EQ(distinctExprs(Fn), 2u) << printFunction(Fn);
  EXPECT_EQ(R.MergedExprs, 2u);
  const auto &Entry = VN.ClassOf[Fn.entry()];
  EXPECT_EQ(Entry[0], Entry[1]);
  EXPECT_EQ(Entry[2], Entry[3]);
  EXPECT_NE(Entry[0], Entry[2]);
}

TEST(GvnUnit, OrderedComparisonsFlipToMirror) {
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  t1 = a < b\n"
                      "  t2 = b > a\n"
                      "  t3 = a <= b\n"
                      "  t4 = b >= a\n"
                      "  exit\n");
  gvn::ValueNumbering VN;
  gvn::runGvn(Fn, &VN);
  EXPECT_TRUE(isValidFunction(Fn));
  EXPECT_EQ(distinctExprs(Fn), 2u) << printFunction(Fn);
  const auto &Entry = VN.ClassOf[Fn.entry()];
  EXPECT_EQ(Entry[0], Entry[1]);
  EXPECT_EQ(Entry[2], Entry[3]);
}

TEST(GvnUnit, CopyChainCongruence) {
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  a = x\n"
                      "  b = a\n"
                      "  t1 = b + y\n"
                      "  t2 = x + y\n"
                      "  exit\n");
  gvn::ValueNumbering VN;
  gvn::GvnReport R = gvn::runGvn(Fn, &VN);
  EXPECT_TRUE(isValidFunction(Fn));
  EXPECT_EQ(distinctExprs(Fn), 1u) << printFunction(Fn);
  EXPECT_EQ(R.MergedExprs, 1u);
  const auto &Entry = VN.ClassOf[Fn.entry()];
  // a, b, and x are one class; t1 and t2 another.
  EXPECT_EQ(Entry[0], Entry[1]);
  EXPECT_EQ(Entry[2], Entry[3]);
}

TEST(GvnUnit, ConstantsFoldIntoClasses) {
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  a = 3\n"
                      "  b = 4\n"
                      "  t1 = a + b\n"
                      "  t2 = 3 + 4\n"
                      "  u = t1 + z\n"
                      "  v = t2 + z\n"
                      "  exit\n");
  gvn::ValueNumbering VN;
  gvn::runGvn(Fn, &VN);
  EXPECT_TRUE(isValidFunction(Fn));
  const auto &Entry = VN.ClassOf[Fn.entry()];
  EXPECT_EQ(Entry[2], Entry[3]); // both are Const(7)
  EXPECT_EQ(Entry[4], Entry[5]);
  EXPECT_EQ(distinctExprs(Fn), 2u) << printFunction(Fn);
}

TEST(GvnUnit, JoinDisagreementStaysSeparate) {
  // x differs along the two paths into `join`, so x+y there must NOT be
  // congruent with the x+y computed in `left`.
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  if p then left else right\n"
                      "block left\n"
                      "  x = 1\n"
                      "  t1 = x + y\n"
                      "  goto join\n"
                      "block right\n"
                      "  x = 2\n"
                      "  goto join\n"
                      "block join\n"
                      "  t2 = x + y\n"
                      "  exit\n");
  gvn::ValueNumbering VN;
  gvn::runGvn(Fn, &VN);
  EXPECT_TRUE(isValidFunction(Fn));
  BlockId Left = 1, Join = 3;
  ASSERT_EQ(Fn.block(Left).label(), "left");
  ASSERT_EQ(Fn.block(Join).label(), "join");
  EXPECT_NE(VN.ClassOf[Left][1], VN.ClassOf[Join][0]);
}

TEST(GvnUnit, LoadsCongruentUntilStoreIntervenes) {
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  a = p\n"
                      "  t1 = load p\n"
                      "  t2 = load a\n"
                      "  store q 7\n"
                      "  t3 = load a\n"
                      "  exit\n");
  gvn::ValueNumbering VN;
  gvn::runGvn(Fn, &VN);
  EXPECT_TRUE(isValidFunction(Fn)) << printFunction(Fn);
  const auto &Entry = VN.ClassOf[Fn.entry()];
  // load p and load a read the same address in the same memory state;
  // the store produces a new state, so the third load is separate.
  EXPECT_EQ(Entry[1], Entry[2]);
  EXPECT_NE(Entry[2], Entry[4]);
  // After rewriting, every load reads the canonical address variable, so
  // one lexical expression remains (the store still kills it in between).
  EXPECT_EQ(distinctExprs(Fn), 1u) << printFunction(Fn);
}

TEST(GvnUnit, RedundantStoreKeepsMemoryClass) {
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  t1 = load p\n"
                      "  store p t1\n"
                      "  t2 = load p\n"
                      "  exit\n");
  gvn::ValueNumbering VN;
  gvn::runGvn(Fn, &VN);
  // Storing back the just-loaded value produces a distinct memory state
  // class (we do not prove store-forwarding), so the loads stay separate;
  // what matters is that numbering the store is deterministic and sound.
  EXPECT_TRUE(isValidFunction(Fn));
  EXPECT_EQ(VN.ClassOf[Fn.entry()].size(), 3u);
}

TEST(GvnUnit, NeverSplitsALexicalClass) {
  // x+y occurs twice with *different* values of x; GVN must leave the
  // shared lexical form alone rather than rewrite one occurrence.
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  t1 = x + y\n"
                      "  x = t1\n"
                      "  t2 = x + y\n"
                      "  exit\n");
  size_t Before = distinctExprs(Fn);
  gvn::runGvn(Fn);
  EXPECT_TRUE(isValidFunction(Fn));
  EXPECT_LE(distinctExprs(Fn), Before) << printFunction(Fn);
}

TEST(GvnUnit, IdempotentOnOwnOutput) {
  MemoryGenOptions Opts;
  Opts.Seed = 7;
  Opts.Depth = 2;
  Function Fn = generateMemoryKernel(Opts);
  gvn::runGvn(Fn);
  std::string Once = printFunction(Fn);
  gvn::GvnReport Second = gvn::runGvn(Fn);
  EXPECT_EQ(printFunction(Fn), Once);
  EXPECT_EQ(Second.MergedExprs, 0u);
}

TEST(GvnUnit, StoresSurviveCleanup) {
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  t = a + b\n"
                      "  store t 5\n"
                      "  dead = a * b\n"
                      "  exit\n");
  CleanupOptions Opts;
  Opts.NumObservableVars = 0; // memory is the only observable effect
  runCleanup(Fn, Opts);
  EXPECT_TRUE(isValidFunction(Fn));
  bool HasStore = false;
  size_t Ops = 0;
  for (const BasicBlock &B : Fn.blocks())
    for (const Instr &I : B.instrs()) {
      HasStore = HasStore || I.isStore();
      Ops += I.isOperation();
    }
  // The store is observable and roots its address computation; the
  // unused product is dead.
  EXPECT_TRUE(HasStore) << printFunction(Fn);
  EXPECT_EQ(Ops, 1u) << printFunction(Fn);
}

//===----------------------------------------------------------------------===//
// Randomized GVN-vs-lexical equivalence harness
//===----------------------------------------------------------------------===//

Function makeHarnessProgram(unsigned Index) {
  unsigned Seed = Index / 3 + 1;
  switch (Index % 3) {
  case 0: {
    MemoryGenOptions Opts;
    Opts.Seed = Seed;
    Opts.Depth = 1 + Seed % 3;
    Opts.StmtsPerBody = 4 + Seed % 6;
    return generateMemoryKernel(Opts);
  }
  case 1: {
    StructuredGenOptions Opts;
    Opts.Seed = Seed;
    Opts.MaxDepth = 2 + Seed % 3;
    Opts.NumVars = 4 + Seed % 4;
    return generateStructured(Opts);
  }
  default: {
    RandomCfgOptions Opts;
    Opts.Seed = Seed;
    Opts.NumBlocks = 6 + Seed % 14;
    Opts.NumVars = 3 + Seed % 4;
    return generateRandomCfg(Opts);
  }
  }
}

void applyPipeline(Function &Fn, const std::string &Spec) {
  PipelineParse P = parsePipeline(Spec);
  ASSERT_TRUE(P.Ok) << P.Error;
  Pipeline::RunResult R = P.P.run(Fn);
  ASSERT_TRUE(R.Ok) << R.Error;
}

class GvnVsLexical : public testing::TestWithParam<unsigned> {};

TEST_P(GvnVsLexical, EquivalentAndNeverWorse) {
  const Function Original = makeHarnessProgram(GetParam());
  ASSERT_TRUE(isValidFunction(Original)) << printFunction(Original);

  Function Lexical = Original;
  applyPipeline(Lexical, "lcse,lcm");
  Function Valued = Original;
  applyPipeline(Valued, "lcse,gvn,lcm");

  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    InterpResult Base = runSeeded(Original, Seed, Original.numVars(),
                                  uint32_t(Original.numBlocks()));
    InterpResult Lex = runSeeded(Lexical, Seed, Original.numVars(),
                                 uint32_t(Original.numBlocks()));
    InterpResult Val = runSeeded(Valued, Seed, Original.numVars(),
                                 uint32_t(Original.numBlocks()));
    // Name-aligned oracle equivalence over the original variables (and
    // the memory map) — zero mismatches tolerated.
    EXPECT_TRUE(sameObservableBehaviour(Base, Val, Original.numVars()))
        << "lcse,gvn,lcm changed semantics, program " << GetParam()
        << " seed " << Seed << "\n== original ==\n"
        << printFunction(Original) << "\n== transformed ==\n"
        << printFunction(Valued);
    if (Base.ReachedExit && Lex.ReachedExit && Val.ReachedExit) {
      EXPECT_LE(Val.TotalEvals, Lex.TotalEvals)
          << "gvn regressed dynamic evaluations, program " << GetParam()
          << " seed " << Seed;
    }
  }
}

TEST_P(GvnVsLexical, GvnAlonePreservesSemantics) {
  const Function Original = makeHarnessProgram(GetParam());
  Function Transformed = Original;
  gvn::runGvn(Transformed);
  ASSERT_TRUE(isValidFunction(Transformed)) << printFunction(Transformed);
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    InterpResult Base = runSeeded(Original, Seed, Original.numVars(),
                                  uint32_t(Original.numBlocks()));
    InterpResult After = runSeeded(Transformed, Seed, Original.numVars(),
                                   uint32_t(Original.numBlocks()));
    EXPECT_TRUE(sameObservableBehaviour(Base, After, Original.numVars()))
        << "gvn changed semantics, program " << GetParam() << " seed "
        << Seed << "\n== original ==\n"
        << printFunction(Original) << "\n== transformed ==\n"
        << printFunction(Transformed);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, GvnVsLexical, testing::Range(0u, 72u));

//===----------------------------------------------------------------------===//
// Memory IR model
//===----------------------------------------------------------------------===//

TEST(MemoryIr, ParsePrintRoundTrip) {
  const std::string Text = "func f\n"
                           "block entry\n"
                           "  a = p + 8\n"
                           "  x = load a\n"
                           "  store a x\n"
                           "  exit\n";
  Function Fn = parse(Text);
  EXPECT_EQ(printFunction(Fn), Text);
}

TEST(MemoryIr, VerifierRejectsMemAssignment) {
  ParseResult P = parseFunction("func f\nblock entry\n  @mem = x\n  exit\n");
  EXPECT_FALSE(P.Ok);
}

TEST(MemoryIr, InterpreterLoadStoreSemantics) {
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  store p 41\n"
                      "  x = load p\n"
                      "  y = x + 1\n"
                      "  z = load q\n"
                      "  exit\n");
  FirstSuccessorOracle Oracle;
  Interpreter::Options Opts;
  std::vector<int64_t> Inputs(Fn.numVars(), 0);
  Inputs[Fn.findVar("p")] = 100;
  Inputs[Fn.findVar("q")] = 200;
  InterpResult R = Interpreter::run(Fn, Inputs, Oracle, Opts);
  EXPECT_EQ(R.Vars[Fn.findVar("x")], 41);
  EXPECT_EQ(R.Vars[Fn.findVar("y")], 42);
  // Unwritten addresses read their deterministic default.
  EXPECT_EQ(R.Vars[Fn.findVar("z")], memDefault(200));
  EXPECT_EQ(R.Mem.at(100), 41);
}

TEST(MemoryIr, StoreKillsLoadAcrossBlocks) {
  // Lexical LCM on an already-canonical program: the second load must not
  // be treated as redundant across the store.
  Function Fn = parse("func f\n"
                      "block entry\n"
                      "  x = load p\n"
                      "  store p 9\n"
                      "  y = load p\n"
                      "  exit\n");
  applyPipeline(Fn, "lcse,lcm");
  FirstSuccessorOracle Oracle;
  Interpreter::Options Opts;
  std::vector<int64_t> Inputs(Fn.numVars(), 0);
  Inputs[Fn.findVar("p")] = 5;
  InterpResult R = Interpreter::run(Fn, Inputs, Oracle, Opts);
  EXPECT_EQ(R.Vars[Fn.findVar("x")], memDefault(5));
  EXPECT_EQ(R.Vars[Fn.findVar("y")], 9);
}

} // namespace
