//===- tests/mincut_test.cpp - Max-flow vs brute-force cut enumeration ---===//

#include "specpre/MinCut.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

using namespace lcm;
using namespace lcm::specpre;

namespace {

/// Deterministic xorshift generator so failures replay exactly.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed * 2654435769u + 1) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  uint64_t below(uint64_t N) { return next() % N; }
};

struct RawEdge {
  uint32_t From, To;
  uint64_t Cap;
};

/// Minimum cut by exhaustive partition enumeration: every subset of the
/// intermediate nodes joins the source side; the cut is the capacity of
/// edges leaving it.  Exponential, hence the small node counts.
uint64_t bruteForceMinCut(uint32_t NumNodes,
                          const std::vector<RawEdge> &Edges, uint32_t S,
                          uint32_t T) {
  const uint32_t Free = NumNodes - 2; // Everyone but S and T.
  std::vector<uint32_t> FreeNodes;
  for (uint32_t N = 0; N != NumNodes; ++N)
    if (N != S && N != T)
      FreeNodes.push_back(N);
  uint64_t Best = ~uint64_t(0);
  for (uint64_t Mask = 0; Mask != (uint64_t(1) << Free); ++Mask) {
    std::vector<bool> InSource(NumNodes, false);
    InSource[S] = true;
    for (uint32_t I = 0; I != Free; ++I)
      if (Mask & (uint64_t(1) << I))
        InSource[FreeNodes[I]] = true;
    uint64_t Cut = 0;
    for (const RawEdge &E : Edges)
      if (InSource[E.From] && !InSource[E.To])
        Cut += E.Cap;
    Best = std::min(Best, Cut);
  }
  return Best;
}

} // namespace

TEST(MinCut, HandVerifiedDiamond) {
  // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (5).
  FlowNetwork Net;
  uint32_t S = Net.addNode(), A = Net.addNode(), B = Net.addNode(),
           T = Net.addNode();
  Net.addEdge(S, A, 3);
  Net.addEdge(S, B, 2);
  Net.addEdge(A, T, 2);
  Net.addEdge(B, T, 3);
  Net.addEdge(A, B, 5);
  EXPECT_EQ(Net.maxFlow(S, T), 5u);
}

TEST(MinCut, InfiniteWhenSinkInseparable) {
  FlowNetwork Net;
  uint32_t S = Net.addNode(), M = Net.addNode(), T = Net.addNode();
  Net.addEdge(S, M, FlowNetwork::Infinite);
  Net.addEdge(M, T, FlowNetwork::Infinite);
  EXPECT_GE(Net.maxFlow(S, T), FlowNetwork::Infinite);
}

TEST(MinCut, ZeroCapacityEdgesCrossForFree) {
  FlowNetwork Net;
  uint32_t S = Net.addNode(), M = Net.addNode(), T = Net.addNode();
  Net.addEdge(S, M, FlowNetwork::Infinite);
  uint32_t Cheap = Net.addEdge(M, T, 0);
  EXPECT_EQ(Net.maxFlow(S, T), 0u);
  // The only s-t path runs through the zero-capacity edge, so the cut
  // must contain it even though it contributes nothing to the value.
  EXPECT_TRUE(Net.inMinCut(Cheap));
}

TEST(MinCut, RandomizedEquivalenceWithBruteForce) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    Rng R(Seed);
    const uint32_t NumNodes = 4 + uint32_t(R.below(6)); // 4..9
    const uint32_t S = 0, T = NumNodes - 1;
    const uint32_t NumEdges = NumNodes + uint32_t(R.below(2 * NumNodes));

    std::vector<RawEdge> Edges;
    for (uint32_t I = 0; I != NumEdges; ++I) {
      uint32_t From = uint32_t(R.below(NumNodes));
      uint32_t To = uint32_t(R.below(NumNodes));
      if (From == To || From == T || To == S)
        continue; // Self-loops and into-source/out-of-sink arcs are noise.
      Edges.push_back({From, To, R.below(20)});
    }
    // Guarantee at least one s-t chain so the instance is non-trivial.
    for (uint32_t N = 0; N + 1 != NumNodes; ++N)
      Edges.push_back({N, N + 1, R.below(10)});

    FlowNetwork Net;
    for (uint32_t N = 0; N != NumNodes; ++N)
      Net.addNode();
    std::vector<uint32_t> Ids;
    for (const RawEdge &E : Edges)
      Ids.push_back(Net.addEdge(E.From, E.To, E.Cap));

    const uint64_t Flow = Net.maxFlow(S, T);
    const uint64_t Brute = bruteForceMinCut(NumNodes, Edges, S, T);
    EXPECT_EQ(Flow, Brute) << "seed " << Seed;

    // The recovered partition must be a valid s-t cut of exactly the
    // max-flow value.
    EXPECT_TRUE(Net.onSourceSide(S)) << "seed " << Seed;
    EXPECT_FALSE(Net.onSourceSide(T)) << "seed " << Seed;
    uint64_t CutValue = 0;
    for (size_t I = 0; I != Edges.size(); ++I)
      if (Net.inMinCut(Ids[I]))
        CutValue += Edges[I].Cap;
    EXPECT_EQ(CutValue, Flow) << "seed " << Seed;
  }
}

TEST(MinCut, ReusableAcrossInstances) {
  FlowNetwork Net;
  for (int Round = 0; Round != 3; ++Round) {
    Net.clear();
    uint32_t S = Net.addNode(), A = Net.addNode(), T = Net.addNode();
    Net.addEdge(S, A, 7);
    Net.addEdge(A, T, 4);
    EXPECT_EQ(Net.maxFlow(S, T), 4u) << "round " << Round;
    EXPECT_TRUE(Net.onSourceSide(A));
  }
}
