//===- tests/solver_equivalence_test.cpp - Three solvers, one fixpoint ----===//
//
// Randomized equivalence sweep: the round-robin, FIFO-worklist, and
// sparse-arena solvers must produce bit-identical fixpoints on every
// direction/meet combination over both generator families, and the
// parallel corpus driver must match the serial one function-by-function.
//
//===----------------------------------------------------------------------===//

#include "analysis/LocalProperties.h"
#include "dataflow/Dataflow.h"
#include "driver/CorpusDriver.h"
#include "ir/Printer.h"
#include "workload/Corpus.h"
#include "workload/RandomCfg.h"
#include "workload/StructuredGen.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

std::vector<GenKill> availabilityTransfers(const Function &Fn,
                                           const LocalProperties &LP) {
  std::vector<GenKill> T(Fn.numBlocks());
  for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
    T[B].Gen = LP.comp(B);
    T[B].Kill = complement(LP.transp(B));
  }
  return T;
}

std::vector<GenKill> anticipabilityTransfers(const Function &Fn,
                                             const LocalProperties &LP) {
  std::vector<GenKill> T(Fn.numBlocks());
  for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
    T[B].Gen = LP.antloc(B);
    T[B].Kill = complement(LP.transp(B));
  }
  return T;
}

class SolverEquivalence : public testing::TestWithParam<unsigned> {};

/// Both generator families, sizes ramping with the seed so the sweep
/// crosses the 64-bit word boundary in both blocks and universe.
Function makeProgram(unsigned Seed) {
  if (Seed % 2 == 0) {
    StructuredGenOptions Opts;
    Opts.Seed = Seed + 1;
    Opts.MaxDepth = 2 + Seed % 4;
    Opts.ControlPercent = 50;
    return generateStructured(Opts);
  }
  RandomCfgOptions Opts;
  Opts.Seed = Seed + 1;
  Opts.NumBlocks = 6 + (Seed * 7) % 90;
  return generateRandomCfg(Opts);
}

TEST_P(SolverEquivalence, AllThreeSolversBitIdentical) {
  Function Fn = makeProgram(GetParam());
  LocalProperties LP(Fn);

  struct Case {
    Direction Dir;
    Meet M;
    std::vector<GenKill> Transfers;
    BitVector Boundary;
  };
  const BitVector Empty(LP.numExprs());
  const BitVector Full(LP.numExprs(), true);
  std::vector<Case> Cases;
  Cases.push_back({Direction::Forward, Meet::Intersection,
                   availabilityTransfers(Fn, LP), Empty});
  Cases.push_back({Direction::Forward, Meet::Union,
                   availabilityTransfers(Fn, LP), Full});
  Cases.push_back({Direction::Backward, Meet::Intersection,
                   anticipabilityTransfers(Fn, LP), Empty});
  Cases.push_back({Direction::Backward, Meet::Union,
                   anticipabilityTransfers(Fn, LP), Full});

  for (const Case &C : Cases) {
    DataflowResult RR =
        solveGenKill(Fn, C.Dir, C.M, C.Transfers, C.Boundary);
    DataflowResult WL =
        solveGenKillWorklist(Fn, C.Dir, C.M, C.Transfers, C.Boundary);
    DataflowResult SP =
        solveGenKillSparse(Fn, C.Dir, C.M, C.Transfers, C.Boundary);
    for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
      EXPECT_EQ(RR.In[B], WL.In[B]) << "worklist In, block " << B;
      EXPECT_EQ(RR.Out[B], WL.Out[B]) << "worklist Out, block " << B;
      EXPECT_EQ(RR.In[B], SP.In[B]) << "sparse In, block " << B;
      EXPECT_EQ(RR.Out[B], SP.Out[B]) << "sparse Out, block " << B;
    }
    // The sparse solver is change-driven: it must never visit more blocks
    // than round-robin touches.
    EXPECT_LE(SP.Stats.NodeVisits, RR.Stats.NodeVisits);
    EXPECT_EQ(SP.Stats.Passes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpora, SolverEquivalence,
                         testing::Range(0u, 32u));

TEST(SolverEquivalence, DispatcherSelectsEachStrategy) {
  Function Fn = makeProgram(3);
  LocalProperties LP(Fn);
  auto Transfers = availabilityTransfers(Fn, LP);
  const BitVector Empty(LP.numExprs());
  for (SolverStrategy S : {SolverStrategy::RoundRobin,
                           SolverStrategy::Worklist,
                           SolverStrategy::Sparse}) {
    DataflowResult R = solveGenKill(Fn, Direction::Forward,
                                    Meet::Intersection, Transfers, Empty, S);
    DataflowResult Ref = solveGenKill(Fn, Direction::Forward,
                                      Meet::Intersection, Transfers, Empty);
    for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
      EXPECT_EQ(R.In[B], Ref.In[B]) << solverStrategyName(S);
      EXPECT_EQ(R.Out[B], Ref.Out[B]) << solverStrategyName(S);
    }
  }
}

/// The parallel corpus driver must produce, function by function, exactly
/// the programs and change counts the serial driver produces.
TEST(CorpusDriver, ParallelMatchesSerialFunctionByFunction) {
  std::vector<Function> Serial, Parallel;
  for (const CorpusEntry &E : makeGeneratedCorpus(12, 12)) {
    Serial.push_back(E.Make());
    Parallel.push_back(E.Make());
  }

  PipelineParse P = parsePipeline("lcse,lcm,cleanup");
  ASSERT_TRUE(P.Ok) << P.Error;

  CorpusDriverOptions SerialOpts;
  SerialOpts.Threads = 1;
  CorpusDriverResult SR = optimizeCorpus(Serial, P.P, SerialOpts);

  CorpusDriverOptions ParallelOpts;
  ParallelOpts.Threads = 4;
  CorpusDriverResult PR = optimizeCorpus(Parallel, P.P, ParallelOpts);

  ASSERT_EQ(SR.PerFunction.size(), PR.PerFunction.size());
  EXPECT_EQ(SR.NumFailed, 0u);
  EXPECT_EQ(PR.NumFailed, 0u);
  EXPECT_GT(SR.TotalChanges, 0u);
  EXPECT_EQ(SR.TotalChanges, PR.TotalChanges);
  for (size_t I = 0; I != Serial.size(); ++I) {
    EXPECT_EQ(SR.PerFunction[I].Changes, PR.PerFunction[I].Changes)
        << "function " << I;
    EXPECT_EQ(printFunction(Serial[I]), printFunction(Parallel[I]))
        << "function " << I;
  }
}

TEST(CorpusDriver, ZeroThreadsMeansHardwareConcurrency) {
  std::vector<Function> Fns;
  for (const CorpusEntry &E : makeGeneratedCorpus(2, 2))
    Fns.push_back(E.Make());
  PipelineParse P = parsePipeline("lcse,lcm");
  ASSERT_TRUE(P.Ok);
  CorpusDriverOptions Opts;
  Opts.Threads = 0;
  CorpusDriverResult R = optimizeCorpus(Fns, P.P, Opts);
  EXPECT_GE(R.ThreadsUsed, 1u);
  EXPECT_EQ(R.PerFunction.size(), Fns.size());
  EXPECT_EQ(R.NumFailed, 0u);
}

} // namespace
