//===- tests/reducibility_test.cpp - Reducible flow-graph detection ------===//

#include "graph/Reducibility.h"
#include "ir/Parser.h"
#include "workload/PaperExamples.h"
#include "workload/RandomCfg.h"
#include "workload/StructuredGen.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

Function parse(const char *Source) {
  ParseResult R = parseFunction(Source);
  EXPECT_TRUE(R) << R.Error;
  return std::move(R.Fn);
}

TEST(Reducibility, PaperExamplesAreReducible) {
  EXPECT_TRUE(isReducible(makeMotivatingExample()));
  EXPECT_TRUE(isReducible(makeCriticalEdgeExample()));
  EXPECT_TRUE(isReducible(makeDiamondExample()));
  EXPECT_TRUE(isReducible(makeLoopNestExample()));
}

TEST(Reducibility, StructuredProgramsAlwaysReducible) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    StructuredGenOptions Opts;
    Opts.Seed = Seed;
    EXPECT_TRUE(isReducible(generateStructured(Opts))) << "seed " << Seed;
  }
}

TEST(Reducibility, ClassicIrreducibleTriangle) {
  // Two loop entries neither of which dominates the other: entry branches
  // into the middle of a cycle a <-> b.
  Function Fn = parse(R"(
block e
  if c then a else b
block a
  br b x
block b
  br a x
block x
  exit
)");
  EXPECT_FALSE(isReducible(Fn));
}

TEST(Reducibility, SelfLoopIsReducible) {
  Function Fn = parse(R"(
block e
  goto h
block h
  br h x
block x
  exit
)");
  EXPECT_TRUE(isReducible(Fn));
}

TEST(Reducibility, AcyclicGraphsAreReducible) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    RandomCfgOptions Opts;
    Opts.Seed = Seed;
    Opts.Acyclic = true;
    EXPECT_TRUE(isReducible(generateRandomCfg(Opts))) << "seed " << Seed;
  }
}

TEST(Reducibility, RandomGeneratorProducesBothKinds) {
  unsigned Irreducible = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    RandomCfgOptions Opts;
    Opts.Seed = Seed;
    Opts.NumBlocks = 14;
    Irreducible += !isReducible(generateRandomCfg(Opts));
  }
  EXPECT_GT(Irreducible, 3u) << "the stress generator should produce "
                                "irreducible graphs regularly";
  EXPECT_LT(Irreducible, 30u);
}

} // namespace
