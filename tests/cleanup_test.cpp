//===- tests/cleanup_test.cpp - Copy propagation and DCE tests -----------===//

#include "baseline/Cleanup.h"
#include "core/LocalCse.h"
#include "core/Lcm.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "workload/StructuredGen.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

Function parse(const char *Source) {
  ParseResult R = parseFunction(Source);
  EXPECT_TRUE(R) << R.Error;
  return std::move(R.Fn);
}

TEST(CopyPropagation, RewritesUsesWithinBlock) {
  Function Fn = parse(R"(
block b0
  x = h
  y = x + 1
  z = x + x
  exit
)");
  uint64_t N = propagateCopies(Fn);
  EXPECT_EQ(N, 3u);
  std::string After = printFunction(Fn);
  EXPECT_NE(After.find("y = h + 1"), std::string::npos) << After;
  EXPECT_NE(After.find("z = h + h"), std::string::npos) << After;
}

TEST(CopyPropagation, StopsAtRedefinition) {
  Function Fn = parse(R"(
block b0
  x = h
  h = 5
  y = x + 1
  exit
)");
  uint64_t N = propagateCopies(Fn);
  EXPECT_EQ(N, 0u) << "h was clobbered; x must keep its old value";
}

TEST(CopyPropagation, ChainsThroughCopies) {
  Function Fn = parse(R"(
block b0
  x = h
  y = x
  z = y + 1
  exit
)");
  propagateCopies(Fn);
  std::string After = printFunction(Fn);
  EXPECT_NE(After.find("z = h + 1"), std::string::npos) << After;
}

TEST(CopyPropagation, RewritesBranchCondition) {
  Function Fn = parse(R"(
block b0
  c2 = c
  if c2 then l else r
block l
  goto j
block r
  goto j
block j
  exit
)");
  propagateCopies(Fn);
  std::string After = printFunction(Fn);
  EXPECT_NE(After.find("if c then"), std::string::npos) << After;
}

TEST(DeadCodeElim, RemovesUnusedAssignments) {
  Function Fn = parse(R"(
block b0
  x = a + b
  x = a - b
  goto b1
block b1
  exit
)");
  CleanupOptions Opts;
  Opts.NumObservableVars = Fn.numVars(); // x observable at exit.
  CleanupReport R = eliminateDeadCode(Fn, Opts);
  EXPECT_EQ(R.InstrsRemoved, 1u) << "the overwritten first assignment dies";
  EXPECT_EQ(Fn.countOperations(), 1u);
}

TEST(DeadCodeElim, ObservabilityKeepsFinalWrites) {
  Function Fn = parse("block b0\n  x = a + b\n  exit\n");
  // With nothing observable the assignment is dead...
  Function Nothing = Fn;
  CleanupOptions None;
  None.NumObservableVars = 0;
  EXPECT_EQ(eliminateDeadCode(Nothing, None).InstrsRemoved, 1u);
  // ...with everything observable it stays.
  CleanupOptions All;
  EXPECT_EQ(eliminateDeadCode(Fn, All).InstrsRemoved, 0u);
}

TEST(DeadCodeElim, CascadesThroughChains) {
  Function Fn = parse(R"(
block b0
  a = 1
  b = a + a
  c = b * b
  exit
)");
  CleanupOptions Opts;
  Opts.NumObservableVars = 0;
  CleanupReport R = eliminateDeadCode(Fn, Opts);
  EXPECT_EQ(R.InstrsRemoved, 3u);
  EXPECT_GE(R.Iterations, 2u) << "chain removal needs a fixpoint";
}

TEST(DeadCodeElim, KeepsBranchConditions) {
  Function Fn = parse(R"(
block b0
  c = a < b
  if c then l else r
block l
  goto j
block r
  goto j
block j
  exit
)");
  CleanupOptions Opts;
  Opts.NumObservableVars = 0;
  CleanupReport R = eliminateDeadCode(Fn, Opts);
  EXPECT_EQ(R.InstrsRemoved, 0u) << "the branch reads c";
}

TEST(DeadCodeElim, LoopCarriedValuesStayLive) {
  Function Fn = parse(R"(
block b0
  i = 5
  goto h
block h
  c = i > 0
  if c then w else d
block w
  i = i - 1
  goto h
block d
  exit
)");
  CleanupOptions Opts;
  Opts.NumObservableVars = 0;
  CleanupReport R = eliminateDeadCode(Fn, Opts);
  EXPECT_EQ(R.InstrsRemoved, 0u);
}

TEST(Cleanup, ShrinksLcmCopyOverhead) {
  // After LCM, a save introduces h = e; x = h; cleanup folds the copies
  // where the saved variable is itself unused afterwards.
  StructuredGenOptions GenOpts;
  GenOpts.Seed = 4;
  Function Fn = generateStructured(GenOpts);
  runLocalCse(Fn);
  Function Original = Fn;
  runPre(Fn, PreStrategy::Lazy);

  size_t InstrsBefore = 0;
  for (const BasicBlock &B : Fn.blocks())
    InstrsBefore += B.instrs().size();

  CleanupOptions Opts;
  Opts.NumObservableVars = Original.numVars();
  CleanupReport R = runCleanup(Fn, Opts);
  EXPECT_TRUE(isValidFunction(Fn));

  size_t InstrsAfter = 0;
  for (const BasicBlock &B : Fn.blocks())
    InstrsAfter += B.instrs().size();
  EXPECT_EQ(InstrsAfter, InstrsBefore - R.InstrsRemoved);

  // Semantics on observable variables preserved.
  FirstSuccessorOracle Oracle;
  Interpreter::Options IOpts;
  std::vector<int64_t> Inputs(Original.numVars(), 2);
  InterpResult A = Interpreter::run(Original, Inputs, Oracle, IOpts);
  InterpResult B = Interpreter::run(Fn, Inputs, Oracle, IOpts);
  ASSERT_TRUE(A.ReachedExit);
  ASSERT_TRUE(B.ReachedExit);
  for (size_t V = 0; V != Original.numVars(); ++V)
    EXPECT_EQ(A.Vars[V], B.Vars[V]) << Original.varName(VarId(V));
}

TEST(Cleanup, FixpointIsIdempotent) {
  Function Fn = parse(R"(
block b0
  h = a + b
  x = h
  y = x + 1
  exit
)");
  CleanupOptions Opts;
  runCleanup(Fn, Opts);
  std::string Once = printFunction(Fn);
  CleanupReport R = runCleanup(Fn, Opts);
  EXPECT_EQ(R.CopiesPropagated, 0u);
  EXPECT_EQ(R.InstrsRemoved, 0u);
  EXPECT_EQ(printFunction(Fn), Once);
}

} // namespace
