//===- tests/golden_text_test.cpp - Exact transformed-program goldens ----===//
//
// The strongest regression net this reproduction has: the *entire* textual
// output of LCM (and BCM where the contrast matters) on every paper
// example, byte for byte.  Any change to the analyses, the placement
// derivation, the rewriter, temp naming, or the printer shows up here
// with a readable diff.
//
//===----------------------------------------------------------------------===//

#include "core/Lcm.h"
#include "ir/Printer.h"
#include "workload/PaperExamples.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

std::string after(Function Fn, PreStrategy S) {
  runPre(Fn, S);
  return printFunction(Fn);
}

TEST(GoldenText, MotivatingLazy) {
  EXPECT_EQ(after(makeMotivatingExample(), PreStrategy::Lazy),
            R"(func motivating
block entry
  goto b1
block b1
  if p then b2 else b3
block b2
  h.0 = a + b
  x = h.0
  goto b4
block b3
  a = k
  h.0 = a + b
  goto b4
block b4
  if q then b5 else b8
block b5
  goto b6
block b6
  y = h.0
  i = i - 1
  ci = i > 0
  if ci then b6 else b8
block b8
  z = h.0
  goto done
block done
  exit
)");
}

TEST(GoldenText, MotivatingBusy) {
  // BCM additionally moves i - 1 out of the loop body: it lands in b5
  // (loop entry) and in a split block on the back edge b6 -> b6 — busy,
  // still computationally optimal, and the temp h.1 now spans the loop.
  EXPECT_EQ(after(makeMotivatingExample(), PreStrategy::Busy),
            R"(func motivating
block entry
  goto b1
block b1
  if p then b2 else b3
block b2
  h.0 = a + b
  x = h.0
  goto b4
block b3
  a = k
  h.0 = a + b
  goto b4
block b4
  if q then b5 else b8
block b5
  h.1 = i - 1
  goto b6
block b6
  y = h.0
  i = h.1
  ci = i > 0
  if ci then b6.b6 else b8
block b8
  z = h.0
  goto done
block done
  exit
block b6.b6
  h.1 = i - 1
  goto b6
)");
}

TEST(GoldenText, CriticalEdgeLazy) {
  EXPECT_EQ(after(makeCriticalEdgeExample(), PreStrategy::Lazy),
            R"(func critical_edge
block entry
  goto c1
block c1
  if p then q else r
block q
  h.0 = a + b
  x = h.0
  goto j
block r
  if s then r.j else k
block j
  y = h.0
  goto done
block k
  goto done
block done
  exit
block r.j
  h.0 = a + b
  goto j
)");
}

TEST(GoldenText, CriticalEdgeBusyEqualsLazy) {
  // On this example the earliest and latest frontiers coincide, so the
  // two placements produce identical programs.
  EXPECT_EQ(after(makeCriticalEdgeExample(), PreStrategy::Busy),
            after(makeCriticalEdgeExample(), PreStrategy::Lazy));
}

TEST(GoldenText, DiamondLazy) {
  EXPECT_EQ(after(makeDiamondExample(), PreStrategy::Lazy),
            R"(func diamond
block entry
  goto c
block c
  if p then l else r
block l
  h.0 = a + b
  x = h.0
  goto j
block r
  t = c
  h.0 = a + b
  goto j
block j
  y = h.0
  goto done
block done
  exit
)");
}

TEST(GoldenText, DiamondBusy) {
  // BCM drives a + b to the earliest safe point: straight into the entry,
  // above the branch — same computation count, maximal temp lifetime.
  EXPECT_EQ(after(makeDiamondExample(), PreStrategy::Busy),
            R"(func diamond
block entry
  h.0 = a + b
  goto c
block c
  if p then l else r
block l
  x = h.0
  goto j
block r
  t = c
  goto j
block j
  y = h.0
  goto done
block done
  exit
)");
}

TEST(GoldenText, LoopNestLazy) {
  EXPECT_EQ(after(makeLoopNestExample(), PreStrategy::Lazy),
            R"(func loop_nest
block entry
  goto outerpre
block outerpre
  i = 3
  goto oh
block oh
  ci = i > 0
  if ci then obody else done
block obody
  h.0 = a * b
  u = h.0
  j = 2
  goto ih
block ih
  cj = j > 0
  if cj then ibody else oend
block ibody
  v = h.0
  w = c + i
  j = j - 1
  goto ih
block oend
  i = i - 1
  goto oh
block done
  exit
)");
}

} // namespace
