//===- tests/bitvector_test.cpp - BitVector unit tests --------------------===//

#include "support/BitVector.h"

#include <gtest/gtest.h>

using namespace lcm;

TEST(BitVector, StartsEmpty) {
  BitVector BV(130);
  EXPECT_EQ(BV.size(), 130u);
  EXPECT_TRUE(BV.none());
  EXPECT_EQ(BV.count(), 0u);
}

TEST(BitVector, SetResetTest) {
  BitVector BV(100);
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(99);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(63));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(99));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 4u);
  BV.reset(63);
  EXPECT_FALSE(BV.test(63));
  EXPECT_EQ(BV.count(), 3u);
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector BV(70);
  BV.setAll();
  EXPECT_EQ(BV.count(), 70u);
  BV.flipAll();
  EXPECT_TRUE(BV.none());
}

TEST(BitVector, OrAndXor) {
  BitVector A(128), B(128);
  A.set(1);
  A.set(100);
  B.set(100);
  B.set(2);

  BitVector Or = A | B;
  EXPECT_TRUE(Or.test(1));
  EXPECT_TRUE(Or.test(2));
  EXPECT_TRUE(Or.test(100));
  EXPECT_EQ(Or.count(), 3u);

  BitVector And = A & B;
  EXPECT_EQ(And.count(), 1u);
  EXPECT_TRUE(And.test(100));

  BitVector X = A;
  X ^= B;
  EXPECT_TRUE(X.test(1));
  EXPECT_TRUE(X.test(2));
  EXPECT_FALSE(X.test(100));
}

TEST(BitVector, AndNotAndComplement) {
  BitVector A(65), B(65);
  A.set(0);
  A.set(64);
  B.set(64);
  BitVector D = andNot(A, B);
  EXPECT_TRUE(D.test(0));
  EXPECT_FALSE(D.test(64));

  BitVector C = complement(B);
  EXPECT_EQ(C.count(), 64u);
  EXPECT_FALSE(C.test(64));
  EXPECT_TRUE(C.test(0));
}

TEST(BitVector, FindFirstAndNext) {
  BitVector BV(200);
  EXPECT_EQ(BV.findFirst(), 200u);
  BV.set(5);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findFirst(), 5u);
  EXPECT_EQ(BV.findNext(6), 64u);
  EXPECT_EQ(BV.findNext(65), 199u);
  EXPECT_EQ(BV.findNext(200), 200u);
}

TEST(BitVector, Iteration) {
  BitVector BV(90);
  BV.set(3);
  BV.set(70);
  BV.set(89);
  std::vector<size_t> Bits;
  for (size_t Bit : BV)
    Bits.push_back(Bit);
  EXPECT_EQ(Bits, (std::vector<size_t>{3, 70, 89}));
  EXPECT_EQ(BV.setBits(), Bits);
}

TEST(BitVector, SubsetAndCommon) {
  BitVector A(64), B(64);
  A.set(1);
  B.set(1);
  B.set(2);
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
  EXPECT_TRUE(A.anyCommon(B));
  A.reset(1);
  EXPECT_FALSE(A.anyCommon(B));
  EXPECT_TRUE(A.isSubsetOf(B));
}

TEST(BitVector, ResizeGrowsWithValue) {
  BitVector BV(10);
  BV.set(9);
  BV.resize(80, true);
  EXPECT_TRUE(BV.test(9));
  EXPECT_FALSE(BV.test(0));
  EXPECT_TRUE(BV.test(10));
  EXPECT_TRUE(BV.test(79));
  EXPECT_EQ(BV.count(), 71u);
}

TEST(BitVector, EqualityCountsOps) {
  BitVector A(256), B(256);
  A.set(200);
  B.set(200);
  uint64_t Before = BitVectorOps::snapshot();
  EXPECT_TRUE(A == B);
  EXPECT_GT(BitVectorOps::snapshot(), Before);
}

TEST(BitVector, ToString) {
  BitVector BV(4);
  BV.set(1);
  BV.set(3);
  EXPECT_EQ(BV.toString(), "0101");
}
