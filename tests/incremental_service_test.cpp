//===- tests/incremental_service_test.cpp - Module + delta serving -------===//
//
// Service-level coverage of incremental reoptimization (docs/INCREMENTAL.md):
// the protocol-v4 request form (base_key + block-level patch), module
// requests with per-function memoization, delta materialization from the
// retained-IR tier with its applied/fallback/base_miss ladder, and a
// randomized edit-sequence harness that applies 50+ block mutations to
// corpus programs and pins every delta response byte-identical to a
// from-scratch full-text request — with the interpreter-oracle validation
// (`validate: true`) running on every delta response served.
//
//===----------------------------------------------------------------------===//

#include "cache/ResultCache.h"
#include "cache/RetainedIr.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "server/Protocol.h"
#include "server/Service.h"
#include "support/Stats.h"
#include "workload/Corpus.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

using namespace lcm;
using namespace lcm::server;
using json::Value;

namespace {

std::string statusOf(const Value &Response) {
  const Value *S = Response.find("status");
  return S && S->isString() ? S->asString() : "(missing)";
}

std::string strField(const Value &V, const char *Key) {
  const Value *F = V.find(Key);
  return F && F->isString() ? F->asString() : std::string();
}

bool boolField(const Value &V, const char *Key) {
  const Value *F = V.find(Key);
  return F && F->isBool() && F->asBool();
}

/// A service with both the result cache and the retained-IR tier, i.e. a
/// delta-serving configuration.
Service makeIncrementalService() {
  ServiceConfig Config;
  Config.Cache =
      std::make_shared<cache::ResultCache>(cache::ResultCacheConfig());
  std::string Error;
  EXPECT_TRUE(Config.Cache->open(Error)) << Error;
  Config.Retained = std::make_shared<cache::RetainedIrCache>();
  return Service(Config);
}

/// A cacheless service: every request runs the pipeline from scratch — the
/// oracle the incremental results are compared against.
Service makeScratchService() { return Service(ServiceConfig{}); }

std::string payloadFor(const Request &R) { return requestToJson(R).dump(); }

/// Canonical printed text of one corpus entry.
std::string corpusText(const CorpusEntry &E) {
  Function Fn = E.Make();
  std::string Text;
  printFunction(Fn, Text);
  return Text;
}

//===----------------------------------------------------------------------===//
// Client-side mirror of the server's block splicing
//===----------------------------------------------------------------------===//

/// Span of the block labelled \p Label in canonical per-function text:
/// its header line through the next `block` header (or end of text).
bool findSpan(const std::string &Text, const std::string &Label,
              size_t &Begin, size_t &End) {
  size_t Pos = 0;
  bool In = false;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    size_t LineEnd = Nl == std::string::npos ? Text.size() : Nl;
    std::string_view Line(Text.data() + Pos, LineEnd - Pos);
    if (Line.substr(0, 6) == "block ") {
      if (In) {
        End = Pos;
        return true;
      }
      if (Line.substr(6) == Label) {
        In = true;
        Begin = Pos;
      }
    }
    Pos = Nl == std::string::npos ? Text.size() : Nl + 1;
  }
  End = Text.size();
  return In;
}

std::vector<std::string> blockLabels(const std::string &Text) {
  std::vector<std::string> Labels;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    size_t LineEnd = Nl == std::string::npos ? Text.size() : Nl;
    std::string_view Line(Text.data() + Pos, LineEnd - Pos);
    if (Line.substr(0, 6) == "block ")
      Labels.emplace_back(Line.substr(6));
    Pos = Nl == std::string::npos ? Text.size() : Nl + 1;
  }
  return Labels;
}

/// Applies one patch op to a shadow function text with the same splice
/// semantics the server uses, so the harness can predict the program every
/// delta request denotes.
void applyOpLocally(std::string &Text, const PatchOp &Op) {
  std::string Block = Op.Ir;
  if (!Block.empty() && Block.back() != '\n')
    Block += '\n';
  size_t B = 0, E = 0;
  switch (Op.K) {
  case PatchOp::Kind::ReplaceBlock:
    ASSERT_TRUE(findSpan(Text, Op.Label, B, E)) << Op.Label;
    Text.replace(B, E - B, Block);
    break;
  case PatchOp::Kind::RemoveBlock:
    ASSERT_TRUE(findSpan(Text, Op.Label, B, E)) << Op.Label;
    Text.erase(B, E - B);
    break;
  case PatchOp::Kind::InsertBlock:
    ASSERT_TRUE(findSpan(Text, Op.After, B, E)) << Op.After;
    Text.insert(E, Block);
    break;
  }
}

/// Reparses and reprints \p Text — the server retains the canonical print
/// of every function it serves, so the shadow must canonicalize the same
/// way to keep predicting block spans exactly.
std::string canon(const std::string &Text) {
  ParseResult P = parseFunction(Text);
  EXPECT_TRUE(bool(P)) << P.Error << "\n" << Text;
  std::string Out;
  printFunction(P.Fn, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Mutation generator
//===----------------------------------------------------------------------===//

/// One edge split the harness performed: `Pred`'s `goto Target` was
/// retargeted through fresh pass-through block `Mid`.  A later "remove"
/// mutation can undo it if both blocks are still in that exact shape.
struct Split {
  std::string Pred, Mid, Target;
};

/// Generates one random, validity-preserving mutation of \p Text (the
/// verifier requires full reachability, so inserts and removes come as
/// paired ops that keep the CFG connected).  Returns the patch ops and
/// applies them to the shadow.
std::vector<PatchOp> mutateFunction(std::string &Text, const std::string &Func,
                                    std::vector<Split> &Splits,
                                    unsigned &Fresh, std::mt19937 &Rng) {
  std::vector<PatchOp> Ops;
  auto Pick = [&Rng](size_t N) { return size_t(Rng() % N); };
  const std::vector<std::string> Labels = blockLabels(Text);

  // Last line of a block's span, without the newline.
  auto LastLine = [&Text](size_t B, size_t E) {
    size_t End = E;
    while (End > B && Text[End - 1] == '\n')
      --End;
    size_t Start = Text.rfind('\n', End - 1);
    Start = Start == std::string::npos || Start < B ? B : Start + 1;
    return Text.substr(Start, End - Start);
  };

  const unsigned Kind = Rng() % 3;
  if (Kind == 2 && !Splits.empty()) {
    // Undo a previous edge split: restore the goto, remove the middle
    // block.  Only if neither block was disturbed since.
    const size_t I = Pick(Splits.size());
    const Split S = Splits[I];
    size_t B = 0, E = 0;
    std::string MidBlock = "block " + S.Mid + "\n  goto " + S.Target + "\n";
    if (findSpan(Text, S.Pred, B, E) &&
        LastLine(B, E) == "  goto " + S.Mid &&
        findSpan(Text, S.Mid, B, E) &&
        Text.substr(B, E - B) == MidBlock) {
      Splits.erase(Splits.begin() + long(I));
      size_t PB = 0, PE = 0;
      findSpan(Text, S.Pred, PB, PE);
      std::string Pred = Text.substr(PB, PE - PB);
      Pred.replace(Pred.rfind("  goto " + S.Mid), 7 + S.Mid.size(),
                   "  goto " + S.Target);
      Ops.push_back({PatchOp::Kind::ReplaceBlock, S.Pred, "", Func, Pred});
      Ops.push_back({PatchOp::Kind::RemoveBlock, S.Mid, "", Func, ""});
      for (const PatchOp &Op : Ops)
        applyOpLocally(Text, Op);
      return Ops;
    }
  }
  if (Kind == 1) {
    // Split an unconditional edge: `Pred: goto T` becomes
    // `Pred: goto Mid; Mid: goto T` — an insert that stays reachable.
    std::vector<std::pair<std::string, std::string>> Gotos;
    for (const std::string &L : Labels) {
      size_t B = 0, E = 0;
      findSpan(Text, L, B, E);
      const std::string Last = LastLine(B, E);
      if (Last.substr(0, 7) == "  goto ")
        Gotos.emplace_back(L, Last.substr(7));
    }
    if (!Gotos.empty()) {
      const auto [Pred, Target] = Gotos[Pick(Gotos.size())];
      const std::string Mid = "qb" + std::to_string(Fresh++);
      size_t B = 0, E = 0;
      findSpan(Text, Pred, B, E);
      std::string PredBlock = Text.substr(B, E - B);
      PredBlock.replace(PredBlock.rfind("  goto " + Target),
                        7 + Target.size(), "  goto " + Mid);
      Ops.push_back({PatchOp::Kind::ReplaceBlock, Pred, "", Func, PredBlock});
      Ops.push_back({PatchOp::Kind::InsertBlock, "", Pred, Func,
                     "block " + Mid + "\n  goto " + Target + "\n"});
      Splits.push_back({Pred, Mid, Target});
      for (const PatchOp &Op : Ops)
        applyOpLocally(Text, Op);
      return Ops;
    }
  }
  // Edit a block body: prepend a fresh computation to a random block.
  const std::string L = Labels[Pick(Labels.size())];
  size_t B = 0, E = 0;
  findSpan(Text, L, B, E);
  std::string Block = Text.substr(B, E - B);
  const size_t HeaderEnd = Block.find('\n');
  const std::string V = "qe" + std::to_string(Fresh++);
  Block.insert(HeaderEnd + 1, "  " + V + " = " + V + " + " + V + "\n");
  Ops.push_back({PatchOp::Kind::ReplaceBlock, L, "", Func, Block});
  applyOpLocally(Text, Ops.back());
  return Ops;
}

//===----------------------------------------------------------------------===//
// Protocol v4
//===----------------------------------------------------------------------===//

TEST(ProtocolV4, DeltaRequestRoundTrips) {
  Request R;
  R.Id = Value::number(int64_t(7));
  R.BaseKey = "0123456789abcdef0123456789abcdef";
  R.Validate = true;
  R.Patch.push_back({PatchOp::Kind::ReplaceBlock, "b1", "", "f",
                     "block b1\n  exit\n"});
  R.Patch.push_back({PatchOp::Kind::InsertBlock, "", "b1", "",
                     "block nb\n  goto b1\n"});
  R.Patch.push_back({PatchOp::Kind::RemoveBlock, "nb", "", "", ""});

  Value Doc = requestToJson(R);
  EXPECT_EQ(strField(Doc, "schema"), RequestSchemaV4);
  // A delta with no full-text fallback omits `ir` entirely.
  EXPECT_EQ(Doc.find("ir"), nullptr);

  RequestParse P = parseRequest(Doc.dump());
  ASSERT_TRUE(bool(P)) << P.Error;
  EXPECT_EQ(P.R.BaseKey, R.BaseKey);
  ASSERT_EQ(P.R.Patch.size(), 3u);
  EXPECT_EQ(P.R.Patch[0].K, PatchOp::Kind::ReplaceBlock);
  EXPECT_EQ(P.R.Patch[0].Label, "b1");
  EXPECT_EQ(P.R.Patch[0].Func, "f");
  EXPECT_EQ(P.R.Patch[0].Ir, "block b1\n  exit\n");
  EXPECT_EQ(P.R.Patch[1].K, PatchOp::Kind::InsertBlock);
  EXPECT_EQ(P.R.Patch[1].After, "b1");
  EXPECT_EQ(P.R.Patch[2].K, PatchOp::Kind::RemoveBlock);
  EXPECT_TRUE(P.R.Ir.empty());
}

TEST(ProtocolV4, IrIsOnlyOptionalForDeltas) {
  EXPECT_FALSE(
      bool(parseRequest("{\"schema\": \"lcm-request-v4\", \"id\": 1}")));
  RequestParse P = parseRequest(
      "{\"schema\": \"lcm-request-v4\", \"base_key\": \"ab\"}");
  ASSERT_TRUE(bool(P)) << P.Error;
  EXPECT_TRUE(P.R.Ir.empty());
}

TEST(ProtocolV4, MalformedPatchOpsAreRejected) {
  const char *UnknownOp = "{\"schema\": \"lcm-request-v4\", \"ir\": \"x\","
                          " \"patch\": [{\"op\": \"rename_block\"}]}";
  EXPECT_FALSE(bool(parseRequest(UnknownOp)));
  const char *NonObject = "{\"schema\": \"lcm-request-v4\", \"ir\": \"x\","
                          " \"patch\": [42]}";
  EXPECT_FALSE(bool(parseRequest(NonObject)));
  const char *BadField = "{\"schema\": \"lcm-request-v4\", \"ir\": \"x\","
                         " \"patch\": [{\"op\": \"remove_block\","
                         " \"label\": 9}]}";
  EXPECT_FALSE(bool(parseRequest(BadField)));
}

//===----------------------------------------------------------------------===//
// Module requests
//===----------------------------------------------------------------------===//

TEST(ModuleRequests, OptimizesEveryFunctionAndMemoizesPerFunction) {
  const std::vector<CorpusEntry> Corpus = makeDefaultCorpus();
  ASSERT_GE(Corpus.size(), 3u);
  const std::string A = corpusText(Corpus[0]);
  const std::string B = corpusText(Corpus[1]);
  const std::string C = corpusText(Corpus[2]);

  Service S = makeIncrementalService();
  Request R;
  R.Id = Value::number(int64_t(1));
  R.Ir = A + B + C;
  Value First = S.handle(payloadFor(R));
  ASSERT_EQ(statusOf(First), "ok") << First.dump();
  const Value *Fns = First.find("functions");
  ASSERT_NE(Fns, nullptr);
  ASSERT_EQ(Fns->size(), 3u);
  EXPECT_FALSE(boolField(First, "cached"));

  // The module result is the concatenation of the per-function results.
  Service Scratch = makeScratchService();
  std::string Expect;
  for (const std::string *T : {&A, &B, &C}) {
    Request One;
    One.Ir = *T;
    Value Resp = Scratch.handle(payloadFor(One));
    ASSERT_EQ(statusOf(Resp), "ok") << Resp.dump();
    Expect += strField(Resp, "ir");
    if (!Expect.empty() && Expect.back() != '\n')
      Expect += '\n';
  }
  EXPECT_EQ(strField(First, "ir"), Expect);

  // A repeat hits every per-function entry and the response says so.
  Value Second = S.handle(payloadFor(R));
  ASSERT_EQ(statusOf(Second), "ok") << Second.dump();
  EXPECT_TRUE(boolField(Second, "cached"));
  EXPECT_EQ(strField(Second, "cache_key"), strField(First, "cache_key"));
  for (const Value &F : Second.find("functions")->items())
    EXPECT_TRUE(boolField(F, "cached")) << F.dump();

  // A single-function request for one member reuses its per-function key.
  Request One;
  One.Ir = B;
  Value Alone = S.handle(payloadFor(One));
  ASSERT_EQ(statusOf(Alone), "ok") << Alone.dump();
  EXPECT_TRUE(boolField(Alone, "cached"))
      << "module serving must populate the same per-function entries the "
         "single-function path keys on";
}

TEST(ModuleRequests, RejectsReportAndProfile) {
  Service S = makeIncrementalService();
  const std::string Two = "func a\nblock b0\n  exit\n"
                          "func b\nblock b0\n  exit\n";
  Request R;
  R.Ir = Two;
  R.WantReport = true;
  Value Resp = S.handle(payloadFor(R));
  EXPECT_EQ(statusOf(Resp), "bad_request") << Resp.dump();
}

//===----------------------------------------------------------------------===//
// Delta requests
//===----------------------------------------------------------------------===//

TEST(DeltaRequests, AppliedDeltaRecomputesOnlyTheEditedFunction) {
  const std::vector<CorpusEntry> Corpus = makeDefaultCorpus();
  std::string A = canon(corpusText(Corpus[0]));
  std::string B = canon(corpusText(Corpus[1]));
  std::string C = canon(corpusText(Corpus[2]));
  const std::string NameB = Corpus[1].Name;

  Service S = makeIncrementalService();
  Request Full;
  Full.Ir = A + B + C;
  Value First = S.handle(payloadFor(Full));
  ASSERT_EQ(statusOf(First), "ok") << First.dump();
  const std::string BaseKey = strField(First, "cache_key");
  ASSERT_EQ(BaseKey.size(), 32u);

  // Edit one block of the middle function.
  std::vector<Split> Splits;
  unsigned Fresh = 0;
  std::mt19937 Rng(7);
  std::string Edited = B;
  std::vector<PatchOp> Ops;
  while (Ops.empty() || Edited == B)
    Ops = mutateFunction(Edited, NameB, Splits, Fresh, Rng);

  const uint64_t ReusedBefore = Stats::get("server.delta_fn_reused");
  Request Delta;
  Delta.BaseKey = BaseKey;
  Delta.Patch = Ops;
  Delta.Validate = true;
  Value Resp = S.handle(payloadFor(Delta));
  ASSERT_EQ(statusOf(Resp), "ok") << Resp.dump();
  EXPECT_EQ(strField(Resp, "delta"), "applied");
  EXPECT_TRUE(boolField(Resp, "validated"));
  EXPECT_EQ(Stats::get("server.delta_fn_reused"), ReusedBefore + 2)
      << "exactly the two untouched functions ride their retained keys";

  const Value *Fns = Resp.find("functions");
  ASSERT_NE(Fns, nullptr);
  ASSERT_EQ(Fns->size(), 3u);
  int CachedCount = 0;
  for (const Value &F : Fns->items())
    CachedCount += boolField(F, "cached") ? 1 : 0;
  EXPECT_EQ(CachedCount, 2);

  // Byte-identical to optimizing the patched module from scratch.
  Service Scratch = makeScratchService();
  Request Patched;
  Patched.Ir = A + Edited + C;
  Value Oracle = Scratch.handle(payloadFor(Patched));
  ASSERT_EQ(statusOf(Oracle), "ok") << Oracle.dump();
  EXPECT_EQ(strField(Resp, "ir"), strField(Oracle, "ir"));
}

TEST(DeltaRequests, UnknownBaseFallsBackWhenIrIsPresent) {
  Service S = makeIncrementalService();
  Request R;
  R.BaseKey = "00000000000000000000000000000000";
  R.Ir = "func f\nblock b0\n  x = a + b\n  exit\n";
  R.Patch.push_back({PatchOp::Kind::RemoveBlock, "b9", "", "", ""});
  Value Resp = S.handle(payloadFor(R));
  ASSERT_EQ(statusOf(Resp), "ok") << Resp.dump();
  EXPECT_EQ(strField(Resp, "delta"), "fallback");
  EXPECT_NE(strField(Resp, "delta_reason").find("not retained"),
            std::string::npos)
      << Resp.dump();
}

TEST(DeltaRequests, UnknownBaseWithoutIrAnswersBaseMiss) {
  Service S = makeIncrementalService();
  Request R;
  R.BaseKey = "00000000000000000000000000000000";
  Value Resp = S.handle(payloadFor(R));
  EXPECT_EQ(statusOf(Resp), "base_miss") << Resp.dump();
}

TEST(DeltaRequests, MalformedPatchWithoutIrAnswersBadRequest) {
  Service S = makeIncrementalService();
  Request Full;
  Full.Ir = "func f\nblock b0\n  x = a + b\n  exit\n";
  Value First = S.handle(payloadFor(Full));
  ASSERT_EQ(statusOf(First), "ok") << First.dump();

  Request Delta;
  Delta.BaseKey = strField(First, "cache_key");
  Delta.Patch.push_back({PatchOp::Kind::RemoveBlock, "no_such", "", "", ""});
  Value Resp = S.handle(payloadFor(Delta));
  EXPECT_EQ(statusOf(Resp), "bad_request") << Resp.dump();
  EXPECT_NE(strField(Resp, "error").find("not found"), std::string::npos)
      << Resp.dump();
}

TEST(DeltaRequests, FingerprintMismatchIsABaseMiss) {
  Service S = makeIncrementalService();
  Request Full;
  Full.Ir = "func f\nblock b0\n  x = a + b\n  y = a + b\n  exit\n";
  Value First = S.handle(payloadFor(Full));
  ASSERT_EQ(statusOf(First), "ok") << First.dump();

  // Same base, different pipeline: the retained per-function keys embed
  // the base's fingerprint, so reuse must be refused.
  Request Delta;
  Delta.BaseKey = strField(First, "cache_key");
  Delta.Pipeline = "lcse";
  Delta.Patch.push_back({PatchOp::Kind::ReplaceBlock, "b0", "", "",
                         "block b0\n  x = a + b\n  exit\n"});
  Value Resp = S.handle(payloadFor(Delta));
  EXPECT_EQ(statusOf(Resp), "base_miss") << Resp.dump();
  EXPECT_NE(strField(Resp, "error").find("different configuration"),
            std::string::npos)
      << Resp.dump();
}

TEST(DeltaRequests, RetainedTierDisabledIsAMissNotACrash) {
  ServiceConfig Config;
  Config.Cache =
      std::make_shared<cache::ResultCache>(cache::ResultCacheConfig());
  std::string Error;
  ASSERT_TRUE(Config.Cache->open(Error)) << Error;
  Service S(Config);
  Request R;
  R.BaseKey = "00000000000000000000000000000000";
  Value Resp = S.handle(payloadFor(R));
  EXPECT_EQ(statusOf(Resp), "base_miss") << Resp.dump();
}

//===----------------------------------------------------------------------===//
// Randomized edit-sequence harness
//===----------------------------------------------------------------------===//

/// Drives one program through a chain of block-level edits: every delta
/// response must be `applied`, interpreter-validated, and byte-identical
/// to a from-scratch full-text request for the same (shadow-predicted)
/// program.  Adds the number of mutations exercised to \p Total.
void runEditChain(Service &Incremental, Service &Scratch,
                  std::vector<std::string> FnTexts,
                  const std::vector<std::string> &FnNames, unsigned Mutations,
                  std::mt19937 &Rng, unsigned &Total) {
  const bool Module = FnTexts.size() > 1;
  for (std::string &T : FnTexts)
    T = canon(T);

  auto FullText = [&FnTexts]() {
    std::string Out;
    for (const std::string &T : FnTexts)
      Out += T;
    return Out;
  };

  Request Initial;
  Initial.Ir = FullText();
  Value First = Incremental.handle(payloadFor(Initial));
  EXPECT_EQ(statusOf(First), "ok") << First.dump();
  std::string BaseKey = strField(First, "cache_key");

  std::vector<std::vector<Split>> Splits(FnTexts.size());
  unsigned Fresh = 0;
  for (unsigned M = 0; M != Mutations; ++M) {
    const size_t FnIdx = Rng() % FnTexts.size();
    Request Delta;
    Delta.BaseKey = BaseKey;
    Delta.Validate = true;
    Delta.Patch = mutateFunction(FnTexts[FnIdx], Module ? FnNames[FnIdx] : "",
                                 Splits[FnIdx], Fresh, Rng);
    FnTexts[FnIdx] = canon(FnTexts[FnIdx]);

    Value Resp = Incremental.handle(payloadFor(Delta));
    ASSERT_EQ(statusOf(Resp), "ok") << Resp.dump();
    EXPECT_EQ(strField(Resp, "delta"), "applied") << Resp.dump();
    EXPECT_TRUE(boolField(Resp, "validated"))
        << "every delta response must pass the interpreter oracle";

    Request FullReq;
    FullReq.Ir = FullText();
    Value Oracle = Scratch.handle(payloadFor(FullReq));
    ASSERT_EQ(statusOf(Oracle), "ok") << Oracle.dump();
    ASSERT_EQ(strField(Resp, "ir"), strField(Oracle, "ir"))
        << "delta result diverged from from-scratch optimization after "
        << M + 1 << " edits";
    const Value *RC = Resp.find("changes");
    const Value *OC = Oracle.find("changes");
    ASSERT_TRUE(RC && OC);
    EXPECT_EQ(RC->asInt(), OC->asInt());

    BaseKey = strField(Resp, "cache_key");
    EXPECT_EQ(BaseKey.size(), 32u);
    ++Total;
  }
}

TEST(IncrementalHarness, RandomizedEditSequencesMatchFromScratch) {
  const std::vector<CorpusEntry> Corpus = makeDefaultCorpus();
  ASSERT_GE(Corpus.size(), 8u);
  Service Incremental = makeIncrementalService();
  Service Scratch = makeScratchService();
  std::mt19937 Rng(20260808);

  unsigned Total = 0;
  // Single-function chains over six corpus programs.
  for (size_t I = 0; I != 6; ++I)
    runEditChain(Incremental, Scratch, {corpusText(Corpus[I])},
                 {Corpus[I].Name}, 9, Rng, Total);
  // One module chain with function-scoped patches.
  runEditChain(
      Incremental, Scratch,
      {corpusText(Corpus[0]), corpusText(Corpus[3]), corpusText(Corpus[6])},
      {Corpus[0].Name, Corpus[3].Name, Corpus[6].Name}, 10, Rng, Total);

  EXPECT_GE(Total, 50u) << "the harness must exercise 50+ mutations";
}

} // namespace
