//===- tests/property_test.cpp - The paper's theorems, tested empirically -===//
//
// Each property below is one of the guarantees PLDI'92 proves, checked over
// randomized structured programs and arbitrary random CFGs:
//
// - admissibility: transformed programs are semantically equivalent
//   (identical observable state along oracle-aligned paths);
// - safety: insertions only at points where the expression is anticipated;
// - computational optimality: BCM/ALCM/LCM never evaluate more than the
//   original or any baseline, and BCM == ALCM == LCM path-wise;
// - lifetime optimality: LCM temp lifetimes <= ALCM <= (and <= BCM);
// - idempotence: LCM on its own output places nothing;
// - granularity equivalence: on LCSE-clean programs, block-level LCM and
//   the paper's single-instruction-node LCM leave behaviourally identical
//   programs (same dynamic evaluation counts).
//
//===----------------------------------------------------------------------===//

#include "baseline/Cleanup.h"
#include "baseline/GlobalCse.h"
#include "baseline/Licm.h"
#include "baseline/MorelRenvoise.h"
#include "core/Lcm.h"
#include "ext/StrengthReduction.h"
#include "core/LocalCse.h"
#include "core/SingleInstr.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "metrics/Cost.h"
#include "workload/PaperExamples.h"
#include "workload/RandomCfg.h"
#include "workload/StructuredGen.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

Function makeRawProgram(unsigned Index);

/// One generated program per parameter value.  Following the paper ("as is
/// customary, we assume that local common subexpression elimination has
/// already been applied"), every program is LCSE-cleaned: on dirty blocks
/// block-granularity PRE provably cannot match statement-granularity
/// optimality (a second in-block occurrence is invisible to ANTLOC/COMP).
Function makeProgram(unsigned Index) {
  Function Fn = makeRawProgram(Index);
  runLocalCse(Fn);
  return Fn;
}

Function makeRawProgram(unsigned Index) {
  switch (Index) {
  case 0:
    return makeMotivatingExample();
  case 1:
    return makeCriticalEdgeExample();
  case 2:
    return makeDiamondExample();
  case 3:
    return makeLoopNestExample();
  default:
    break;
  }
  unsigned Seed = Index - 3;
  if (Index % 2 == 0) {
    StructuredGenOptions Opts;
    Opts.Seed = Seed;
    Opts.MaxDepth = 2 + Seed % 3;
    Opts.NumVars = 4 + Seed % 4;
    return generateStructured(Opts);
  }
  RandomCfgOptions Opts;
  Opts.Seed = Seed;
  Opts.NumBlocks = 6 + Seed % 18;
  Opts.NumVars = 3 + Seed % 4;
  return generateRandomCfg(Opts);
}

constexpr unsigned NumPrograms = 96;
constexpr unsigned RunsPerProgram = 4;

struct Strategy {
  const char *Name;
  void (*Apply)(Function &);
};

const Strategy Strategies[] = {
    {"BCM", [](Function &F) { runPre(F, PreStrategy::Busy); }},
    {"ALCM", [](Function &F) { runPre(F, PreStrategy::AlmostLazy); }},
    {"LCM", [](Function &F) { runPre(F, PreStrategy::Lazy); }},
    {"CSE", [](Function &F) { runGlobalCse(F); }},
    {"MR", [](Function &F) { runMorelRenvoise(F); }},
    {"LCSE", [](Function &F) { runLocalCse(F); }},
};

/// Passes checked for semantic preservation only (their cost claims have
/// dedicated tests elsewhere).
const Strategy SemanticOnlyStrategies[] = {
    {"LICM-spec",
     [](Function &F) { runLicm(F, LicmMode::Speculative); }},
    {"LICM-safe", [](Function &F) { runLicm(F, LicmMode::SafeOnly); }},
    {"SR", [](Function &F) { runStrengthReduction(F); }},
    {"LCM+cleanup",
     [](Function &F) {
       runPre(F, PreStrategy::Lazy);
       runCleanup(F, CleanupOptions{});
     }},
    {"sized-LCM",
     [](Function &F) {
       CfgEdges Edges(F);
       LocalProperties LP(F);
       LazyCodeMotion Engine(F, Edges, LP);
       applyPlacement(
           F, Edges,
           filterPlacementForCodeSize(Engine.placement(PreStrategy::Lazy)));
     }},
};

InterpResult runSeeded(const Function &Fn, uint64_t Seed, size_t NumInputVars,
                       uint32_t OriginalBlockCount) {
  RandomOracle Oracle(Seed ^ 0x94d049bb133111ebULL);
  Interpreter::Options Opts;
  Opts.MaxOriginalBlockVisits = 3000;
  Opts.OriginalBlockCount = OriginalBlockCount;
  return Interpreter::run(Fn, makeSeededInputs(Seed, NumInputVars), Oracle,
                          Opts);
}

class PreProperties : public testing::TestWithParam<unsigned> {};

TEST_P(PreProperties, TransformsPreserveSemantics) {
  const Function Original = makeProgram(GetParam());
  ASSERT_TRUE(isValidFunction(Original)) << printFunction(Original);

  std::vector<Strategy> All(std::begin(Strategies), std::end(Strategies));
  All.insert(All.end(), std::begin(SemanticOnlyStrategies),
             std::end(SemanticOnlyStrategies));
  for (const Strategy &S : All) {
    Function Transformed = Original;
    S.Apply(Transformed);
    ASSERT_TRUE(isValidFunction(Transformed))
        << S.Name << " broke structural invariants on program "
        << GetParam() << "\n"
        << printFunction(Transformed);

    for (uint64_t Seed = 1; Seed <= RunsPerProgram; ++Seed) {
      InterpResult Base = runSeeded(Original, Seed, Original.numVars(),
                                    uint32_t(Original.numBlocks()));
      InterpResult After = runSeeded(Transformed, Seed, Original.numVars(),
                                     uint32_t(Original.numBlocks()));
      EXPECT_TRUE(sameObservableBehaviour(Base, After, Original.numVars()))
          << S.Name << " changed semantics, program " << GetParam()
          << " seed " << Seed << "\n== original ==\n"
          << printFunction(Original) << "\n== transformed ==\n"
          << printFunction(Transformed);
    }
  }
}

TEST_P(PreProperties, ComputationalOptimality) {
  const Function Original = makeProgram(GetParam());

  for (uint64_t Seed = 1; Seed <= RunsPerProgram; ++Seed) {
    InterpResult Base = runSeeded(Original, Seed, Original.numVars(),
                                  uint32_t(Original.numBlocks()));
    if (!Base.ReachedExit)
      continue; // Truncated paths have boundary noise; skip them.

    std::map<std::string, uint64_t> Evals;
    for (const Strategy &S : Strategies) {
      Function Transformed = Original;
      S.Apply(Transformed);
      InterpResult After = runSeeded(Transformed, Seed, Original.numVars(),
                                     uint32_t(Original.numBlocks()));
      ASSERT_TRUE(After.ReachedExit);
      Evals[S.Name] = After.TotalEvals;
    }

    // The paper's Theorem (computational optimality): no admissible
    // transformation beats LCM on any path, and busy/lazy tie exactly.
    EXPECT_EQ(Evals["BCM"], Evals["LCM"]) << "program " << GetParam();
    EXPECT_EQ(Evals["ALCM"], Evals["LCM"]) << "program " << GetParam();
    EXPECT_LE(Evals["LCM"], Base.TotalEvals) << "program " << GetParam();
    EXPECT_LE(Evals["LCM"], Evals["CSE"]) << "program " << GetParam();
    EXPECT_LE(Evals["LCM"], Evals["MR"]) << "program " << GetParam();
    EXPECT_LE(Evals["LCM"], Evals["LCSE"]) << "program " << GetParam();
    // The baselines themselves never pessimize.
    EXPECT_LE(Evals["CSE"], Base.TotalEvals) << "program " << GetParam();
    EXPECT_LE(Evals["MR"], Base.TotalEvals) << "program " << GetParam();
  }
}

TEST_P(PreProperties, LifetimeOptimality) {
  const Function Original = makeProgram(GetParam());

  auto lifetimeOf = [&Original](PreStrategy S) {
    Function Fn = Original;
    runPre(Fn, S);
    return measureTempLifetimes(Fn, Original.numVars());
  };
  LifetimeStats Busy = lifetimeOf(PreStrategy::Busy);
  LifetimeStats Almost = lifetimeOf(PreStrategy::AlmostLazy);
  LifetimeStats Lazy = lifetimeOf(PreStrategy::Lazy);

  // Lifetime optimality: lazy never keeps a temp alive longer than the
  // busy or unpruned variants.
  EXPECT_LE(Lazy.LiveBlockSlots, Busy.LiveBlockSlots)
      << "program " << GetParam();
  EXPECT_LE(Lazy.LiveBlockSlots, Almost.LiveBlockSlots)
      << "program " << GetParam();
  EXPECT_LE(Lazy.MaxPressure, Busy.MaxPressure) << "program " << GetParam();
}

TEST_P(PreProperties, InsertionsAreSafe) {
  const Function Original = makeProgram(GetParam());
  CfgEdges Edges(Original);
  LocalProperties LP(Original);
  DataflowResult Ant = computeAnticipability(Original, LP);

  // LCM/BCM edge insertions: anticipated at the target block's entry.
  LazyCodeMotion Engine(Original, Edges, LP);
  for (PreStrategy S : {PreStrategy::Busy, PreStrategy::Lazy}) {
    PrePlacement P = Engine.placement(S);
    for (EdgeId E = 0; E != Edges.numEdges(); ++E)
      EXPECT_TRUE(P.InsertEdge[E].isSubsetOf(Ant.In[Edges.edge(E).To]))
          << preStrategyName(S) << " unsafe insertion, program "
          << GetParam();
  }

  // Morel-Renvoise node insertions: anticipated at the block's exit.
  MorelRenvoiseResult MR = computeMorelRenvoise(Original, Edges);
  for (BlockId B = 0; B != Original.numBlocks(); ++B)
    EXPECT_TRUE(MR.Placement.InsertEndOfBlock[B].isSubsetOf(Ant.Out[B]))
        << "MR unsafe insertion, program " << GetParam();
}

TEST_P(PreProperties, LcmIsIdempotent) {
  Function Fn = makeProgram(GetParam());
  runPre(Fn, PreStrategy::Lazy);

  CfgEdges Edges(Fn);
  LocalProperties LP(Fn);
  LazyCodeMotion Engine(Fn, Edges, LP);
  PrePlacement Second = Engine.placement(PreStrategy::Lazy);
  EXPECT_TRUE(Second.isNoop())
      << "second LCM run still places code, program " << GetParam() << "\n"
      << printFunction(Fn);
}

TEST_P(PreProperties, NodeGranularityEngineAgrees) {
  // The paper states its equations over single-statement nodes; we run the
  // same system at both granularities (after establishing the paper's
  // LCSE precondition) and demand behaviourally identical results.
  Function Clean = makeProgram(GetParam());
  runLocalCse(Clean);

  Function BlockLevel = Clean;
  runPre(BlockLevel, PreStrategy::Lazy);

  Function NodeLevel = expandToSingleInstructionNodes(Clean);
  ASSERT_TRUE(isValidFunction(NodeLevel));
  runPre(NodeLevel, PreStrategy::Lazy);

  for (uint64_t Seed = 1; Seed <= RunsPerProgram; ++Seed) {
    InterpResult A = runSeeded(BlockLevel, Seed, Clean.numVars(),
                               uint32_t(Clean.numBlocks()));
    InterpResult B = runSeeded(NodeLevel, Seed, Clean.numVars(),
                               uint32_t(NodeLevel.numBlocks()));
    // Align on exit-reaching runs only (visit budgets differ in block
    // granularity between the two forms).
    if (!A.ReachedExit || !B.ReachedExit)
      continue;
    EXPECT_EQ(A.TotalEvals, B.TotalEvals)
        << "granularities disagree, program " << GetParam() << " seed "
        << Seed;
    for (size_t V = 0; V != Clean.numVars(); ++V)
      EXPECT_EQ(A.Vars[V], B.Vars[V]);
  }
}

TEST_P(PreProperties, LocalCseEstablishesCleanBlocks) {
  Function Fn = makeProgram(GetParam());
  runLocalCse(Fn);
  // The strong clean-block invariant: no block evaluates an expression
  // that is still locally available (operands unkilled since an earlier
  // in-block computation).  This is precisely when block-granularity
  // ANTLOC/COMP carry full occurrence information.
  const ExprPool &Pool = Fn.exprs();
  for (const BasicBlock &B : Fn.blocks()) {
    BitVector Avail(Pool.size());
    for (const Instr &I : B.instrs()) {
      if (I.isOperation()) {
        EXPECT_FALSE(Avail.test(I.exprId()))
            << "block " << B.label() << " recomputes "
            << Fn.exprText(I.exprId());
      }
      Avail.andNot(Pool.exprsReadingVar(I.dest()));
      if (I.isOperation() && !Pool.reads(I.exprId(), I.dest()))
        Avail.set(I.exprId());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, PreProperties,
                         testing::Range(0u, NumPrograms));

} // namespace
