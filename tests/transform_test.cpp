//===- tests/transform_test.cpp - applyPlacement rewriting mechanics -----===//

#include "core/Placement.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

struct Fixture {
  Function Fn;
  explicit Fixture(const char *Source) {
    ParseResult R = parseFunction(Source);
    EXPECT_TRUE(R) << R.Error;
    Fn = std::move(R.Fn);
  }
  ExprId expr(const char *Text) const {
    for (ExprId E = 0; E != Fn.exprs().size(); ++E)
      if (Fn.exprText(E) == Text)
        return E;
    ADD_FAILURE() << "no expression '" << Text << "'";
    return InvalidExpr;
  }
  BlockId block(const char *Label) const {
    for (const BasicBlock &B : Fn.blocks())
      if (B.label() == Label)
        return B.id();
    ADD_FAILURE() << "no block '" << Label << "'";
    return InvalidBlock;
  }
};

PrePlacement emptyPlacement(const Function &Fn, const CfgEdges &Edges,
                            bool WithEdgeInserts = true,
                            bool WithNodeInserts = false) {
  PrePlacement P;
  P.NumExprs = Fn.exprs().size();
  if (WithEdgeInserts)
    P.InsertEdge.assign(Edges.numEdges(), BitVector(P.NumExprs));
  if (WithNodeInserts)
    P.InsertEndOfBlock.assign(Fn.numBlocks(), BitVector(P.NumExprs));
  P.Delete.assign(Fn.numBlocks(), BitVector(P.NumExprs));
  P.Save.assign(Fn.numBlocks(), BitVector(P.NumExprs));
  return P;
}

EdgeId edgeBetween(const CfgEdges &Edges, BlockId From, BlockId To) {
  for (EdgeId E = 0; E != Edges.numEdges(); ++E)
    if (Edges.edge(E).From == From && Edges.edge(E).To == To)
      return E;
  ADD_FAILURE() << "no such edge";
  return 0;
}

TEST(ApplyPlacement, DeleteRewritesUpwardExposedOccurrence) {
  Fixture F("block b0\n  x = a + b\n  goto b1\nblock b1\n  exit\n");
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  P.Delete[F.block("b0")].set(F.expr("a + b"));
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  EXPECT_EQ(R.Replacements, 1u);
  EXPECT_NE(printFunction(F.Fn).find("x = h.0"), std::string::npos);
  EXPECT_EQ(F.Fn.countOperations(), 0u);
}

TEST(ApplyPlacement, DeleteReplacesEveryUpwardExposedOccurrence) {
  // Two upward-exposed occurrences (no kill between): both are redundant
  // if the expression arrives in the temp.
  Fixture F("block b0\n  x = a + b\n  y = a + b\n  goto b1\n"
            "block b1\n  exit\n");
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  P.Delete[F.block("b0")].set(F.expr("a + b"));
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  EXPECT_EQ(R.Replacements, 2u);
  EXPECT_EQ(F.Fn.countOperations(), 0u);
}

TEST(ApplyPlacement, SaveRewritesDownwardExposedOccurrence) {
  Fixture F("block b0\n  x = a + b\n  goto b1\nblock b1\n  exit\n");
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  P.Save[F.block("b0")].set(F.expr("a + b"));
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  EXPECT_EQ(R.Saves, 1u);
  std::string After = printFunction(F.Fn);
  EXPECT_NE(After.find("h.0 = a + b\n  x = h.0"), std::string::npos) << After;
  EXPECT_EQ(F.Fn.countOperations(), 1u);
}

TEST(ApplyPlacement, DeleteAndSaveInOneBlockAroundKill) {
  // Upward occurrence deleted, separate downward occurrence saved.
  Fixture F("block b0\n  x = a + b\n  a = k\n  y = a + b\n  goto b1\n"
            "block b1\n  exit\n");
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  P.Delete[F.block("b0")].set(F.expr("a + b"));
  P.Save[F.block("b0")].set(F.expr("a + b"));
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  EXPECT_EQ(R.Replacements, 1u);
  EXPECT_EQ(R.Saves, 1u);
  std::string After = printFunction(F.Fn);
  EXPECT_NE(After.find("x = h.0"), std::string::npos) << After;
  EXPECT_NE(After.find("h.0 = a + b\n  y = h.0"), std::string::npos) << After;
}

TEST(ApplyPlacement, EdgeInsertAppendsToSingleSuccPred) {
  Fixture F("block b0\n  t = c\n  goto b1\nblock b1\n  x = a + b\n  exit\n");
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  P.InsertEdge[edgeBetween(Edges, F.block("b0"), F.block("b1"))].set(
      F.expr("a + b"));
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  EXPECT_EQ(R.AppendedToPred, 1u);
  EXPECT_EQ(R.SplitBlocks, 0u);
  // Insertion goes after b0's own code.
  EXPECT_NE(printFunction(F.Fn).find("t = c\n  h.0 = a + b"),
            std::string::npos);
}

TEST(ApplyPlacement, EdgeInsertPrependsToSinglePredSucc) {
  Fixture F(R"(
block b0
  if c then l else r
block l
  x = a + b
  goto j
block r
  goto j
block j
  exit
)");
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  // b0 has two successors, l has one pred: insertion lands at l's start.
  P.InsertEdge[edgeBetween(Edges, F.block("b0"), F.block("l"))].set(
      F.expr("a + b"));
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  EXPECT_EQ(R.PrependedToSucc, 1u);
  EXPECT_EQ(R.SplitBlocks, 0u);
  EXPECT_NE(printFunction(F.Fn).find("block l\n  h.0 = a + b\n  x = a + b"),
            std::string::npos)
      << printFunction(F.Fn);
}

TEST(ApplyPlacement, CriticalEdgeForcesSplit) {
  Fixture F(R"(
block b0
  if c then l else j
block l
  goto j
block j
  x = a + b
  exit
)");
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  // b0 -> j: b0 branches, j joins; must split.
  P.InsertEdge[edgeBetween(Edges, F.block("b0"), F.block("j"))].set(
      F.expr("a + b"));
  size_t BlocksBefore = F.Fn.numBlocks();
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  EXPECT_EQ(R.SplitBlocks, 1u);
  EXPECT_EQ(F.Fn.numBlocks(), BlocksBefore + 1);
  EXPECT_TRUE(isValidFunction(F.Fn));
  // The split block holds exactly the inserted computation.
  const BasicBlock &Mid = F.Fn.block(BlockId(BlocksBefore));
  ASSERT_EQ(Mid.instrs().size(), 1u);
  EXPECT_TRUE(Mid.instrs()[0].isOperation());
}

TEST(ApplyPlacement, NodeInsertAppendsAtBlockEnd) {
  Fixture F("block b0\n  if c then l else r\nblock l\n  goto j\n"
            "block r\n  goto j\nblock j\n  x = a + b\n  exit\n");
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges, /*WithEdgeInserts=*/false,
                                  /*WithNodeInserts=*/true);
  P.InsertEndOfBlock[F.block("l")].set(F.expr("a + b"));
  P.InsertEndOfBlock[F.block("r")].set(F.expr("a + b"));
  P.Delete[F.block("j")].set(F.expr("a + b"));
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  EXPECT_EQ(R.NodeInsertions, 2u);
  EXPECT_EQ(R.Replacements, 1u);
  EXPECT_TRUE(isValidFunction(F.Fn));
  // Both insertions use the same temp for the same expression.
  EXPECT_EQ(R.TempOfExpr.size(), F.Fn.exprs().size());
}

TEST(ApplyPlacement, SharedTempAcrossSites) {
  Fixture F(R"(
block b0
  if c then l else r
block l
  x = a + b
  goto j
block r
  goto j
block j
  y = a + b
  exit
)");
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  P.InsertEdge[edgeBetween(Edges, F.block("r"), F.block("j"))].set(
      F.expr("a + b"));
  P.Save[F.block("l")].set(F.expr("a + b"));
  P.Delete[F.block("j")].set(F.expr("a + b"));
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  VarId Temp = R.TempOfExpr[F.expr("a + b")];
  ASSERT_NE(Temp, InvalidVar);
  // One temp: all three sites reference it.
  std::string After = printFunction(F.Fn);
  std::string TempName = F.Fn.varName(Temp);
  size_t Count = 0;
  for (size_t Pos = After.find(TempName); Pos != std::string::npos;
       Pos = After.find(TempName, Pos + 1))
    ++Count;
  EXPECT_EQ(Count, 4u) << After; // 2 defs + def-use in save + use in j.
}

TEST(ApplyPlacement, ParallelEdgesSplitIndependently) {
  // Both parallel edges b0 -> j carry an insertion: each must get its own
  // split block (To has two preds, From has two succs), and the program
  // must stay structurally valid.
  Fixture F("block b0\n  br j j\nblock j\n  x = a + b\n  exit\n");
  CfgEdges Edges(F.Fn);
  ASSERT_EQ(Edges.numEdges(), 2u);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  P.InsertEdge[0].set(F.expr("a + b"));
  P.InsertEdge[1].set(F.expr("a + b"));
  P.Delete[F.block("j")].set(F.expr("a + b"));
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  EXPECT_EQ(R.SplitBlocks, 2u);
  EXPECT_EQ(R.EdgeInsertions, 2u);
  EXPECT_EQ(R.Replacements, 1u);
  EXPECT_TRUE(isValidFunction(F.Fn));
  // Still exactly two paths into j, each defining the temp first.
  EXPECT_EQ(F.Fn.block(F.block("j")).preds().size(), 2u);
}

TEST(ApplyPlacement, NoopPlacementChangesNothing) {
  Fixture F("block b0\n  x = a + b\n  goto b1\nblock b1\n  exit\n");
  std::string Before = printFunction(F.Fn);
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  EXPECT_TRUE(P.isNoop());
  ApplyReport R = applyPlacement(F.Fn, Edges, P);
  EXPECT_EQ(printFunction(F.Fn), Before);
  EXPECT_EQ(R.EdgeInsertions + R.Replacements + R.Saves, 0u);
}

TEST(PrePlacementCounts, SumBitsAcrossSets) {
  Fixture F("block b0\n  x = a + b\n  goto b1\nblock b1\n  exit\n");
  CfgEdges Edges(F.Fn);
  PrePlacement P = emptyPlacement(F.Fn, Edges);
  P.Delete[0].set(0);
  P.Save[1].set(0);
  P.InsertEdge[0].set(0);
  EXPECT_EQ(P.numDeletions(), 1u);
  EXPECT_EQ(P.numSaves(), 1u);
  EXPECT_EQ(P.numEdgeInsertions(), 1u);
  EXPECT_EQ(P.numNodeInsertions(), 0u);
  EXPECT_FALSE(P.isNoop());
}

} // namespace
