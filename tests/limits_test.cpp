//===- tests/limits_test.cpp - Resource caps on parser and builder -------===//
//
// ir/Limits.h exists so the optimization service can feed untrusted IR to
// the parser without an unbounded request exhausting memory.  These tests
// pin the contract: each cap trips exactly at its boundary, the failure is
// a structured diagnostic with OverLimit set (so the server maps it to a
// `limits` response, not a syntax error), and IRBuilder honours the same
// caps as a programmatic guard.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Limits.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <string>

using namespace lcm;

namespace {

/// A chain of N blocks, each with one `xI = a + b`-style assignment.
std::string chainProgram(int Blocks, int InstrsPerBlock = 1) {
  std::string Source = "func chain\n";
  for (int I = 0; I != Blocks; ++I) {
    Source += "block b" + std::to_string(I) + "\n";
    for (int J = 0; J != InstrsPerBlock; ++J)
      Source += "  x = a + b\n";
    Source += I + 1 == Blocks ? std::string("  exit\n")
                              : "  goto b" + std::to_string(I + 1) + "\n";
  }
  return Source;
}

TEST(Limits, DefaultsAreGenerous) {
  IRLimits L;
  ParseResult R = parseFunction(chainProgram(64), L);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_FALSE(R.OverLimit);
}

TEST(Limits, SourceBytes) {
  IRLimits L;
  L.MaxSourceBytes = 64;
  ParseResult R = parseFunction(chainProgram(16), L);
  ASSERT_FALSE(R.Ok);
  EXPECT_TRUE(R.OverLimit);
  EXPECT_NE(R.Error.find("limit:"), std::string::npos) << R.Error;
  EXPECT_EQ(R.Error.rfind("line ", 0), 0u) << R.Error;

  // At or under the cap parses fine.
  std::string Small = "block b0\n  exit\n";
  L.MaxSourceBytes = Small.size();
  EXPECT_TRUE(parseFunction(Small, L));
}

TEST(Limits, Blocks) {
  IRLimits L;
  L.MaxBlocks = 4;
  EXPECT_TRUE(parseFunction(chainProgram(4), L));
  ParseResult R = parseFunction(chainProgram(5), L);
  ASSERT_FALSE(R.Ok);
  EXPECT_TRUE(R.OverLimit);
  EXPECT_NE(R.Error.find("limit:"), std::string::npos) << R.Error;
}

TEST(Limits, Instructions) {
  IRLimits L;
  // chainProgram(2, 3): 6 assignments plus terminators (terminators are
  // edges, not instructions).
  L.MaxInstrs = 6;
  EXPECT_TRUE(parseFunction(chainProgram(2, 3), L));
  L.MaxInstrs = 5;
  ParseResult R = parseFunction(chainProgram(2, 3), L);
  ASSERT_FALSE(R.Ok);
  EXPECT_TRUE(R.OverLimit);
}

TEST(Limits, Expressions) {
  IRLimits L;
  L.MaxExprs = 2;
  // Two distinct expressions intern fine; re-use does not count.
  EXPECT_TRUE(parseFunction(
      "block b0\n  x = a + b\n  y = a + b\n  z = a - b\n  exit\n", L));
  ParseResult R = parseFunction(
      "block b0\n  x = a + b\n  y = a - b\n  z = a * b\n  exit\n", L);
  ASSERT_FALSE(R.Ok);
  EXPECT_TRUE(R.OverLimit);
}

TEST(Limits, Variables) {
  IRLimits L;
  L.MaxVars = 4;
  // a, b, x, y = 4 distinct names.
  EXPECT_TRUE(parseFunction("block b0\n  x = a + b\n  y = a\n  exit\n", L));
  ParseResult R =
      parseFunction("block b0\n  x = a + b\n  y = c\n  exit\n", L);
  ASSERT_FALSE(R.Ok);
  EXPECT_TRUE(R.OverLimit);
}

TEST(Limits, SyntaxErrorIsNotOverLimit) {
  IRLimits L;
  ParseResult R = parseFunction("block b0\n  x = a ? b\n  exit\n", L);
  ASSERT_FALSE(R.Ok);
  EXPECT_FALSE(R.OverLimit);
}

TEST(Limits, UnlimitedRestoresTrustedBehaviour) {
  ParseResult R = parseFunction(chainProgram(256), IRLimits::unlimited());
  ASSERT_TRUE(R) << R.Error;
}

TEST(Limits, BuilderBlockCap) {
  Function Fn("capped");
  IRBuilder B(Fn);
  IRLimits L;
  L.MaxBlocks = 2;
  B.setLimits(&L);
  BlockId B0 = B.startBlock();
  BlockId B1 = B.startBlock();
  EXPECT_NE(B0, B1);
  EXPECT_FALSE(B.limitHit());
  // The third block is refused: no new block appears and the trip is
  // recorded.
  BlockId B2 = B.startBlock();
  EXPECT_TRUE(B.limitHit());
  EXPECT_EQ(B2, B1);
  EXPECT_EQ(Fn.numBlocks(), 2u);
}

TEST(Limits, BuilderInstrCap) {
  Function Fn("capped");
  IRBuilder B(Fn);
  IRLimits L;
  L.MaxInstrs = 2;
  B.setLimits(&L);
  B.startBlock();
  B.add("x", "a", "b").add("y", "a", "x");
  EXPECT_FALSE(B.limitHit());
  B.add("z", "y", "x"); // No-op: cap reached.
  EXPECT_TRUE(B.limitHit());
  EXPECT_EQ(Fn.block(0).instrs().size(), 2u);
}

TEST(Limits, BuilderVarCap) {
  Function Fn("capped");
  IRBuilder B(Fn);
  IRLimits L;
  L.MaxVars = 3;
  B.setLimits(&L);
  B.startBlock();
  B.add("x", "a", "b"); // x, a, b: exactly at the cap.
  EXPECT_FALSE(B.limitHit());
  B.add("w", "a", "b"); // w would be a fourth variable.
  EXPECT_TRUE(B.limitHit());
  EXPECT_EQ(Fn.block(0).instrs().size(), 1u);
}

} // namespace
