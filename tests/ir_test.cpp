//===- tests/ir_test.cpp - Expression pool, function, builder tests ------===//

#include "ir/Function.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace lcm;

namespace {

TEST(Opcode, BinaryClassification) {
  EXPECT_TRUE(isBinaryOpcode(Opcode::Add));
  EXPECT_TRUE(isBinaryOpcode(Opcode::CmpLe));
  EXPECT_TRUE(isBinaryOpcode(Opcode::Max));
  EXPECT_FALSE(isBinaryOpcode(Opcode::Neg));
  EXPECT_FALSE(isBinaryOpcode(Opcode::Not));
}

TEST(Opcode, TotalEvalSemantics) {
  EXPECT_EQ(evalOpcode(Opcode::Add, 2, 3), 5);
  EXPECT_EQ(evalOpcode(Opcode::Sub, 2, 3), -1);
  EXPECT_EQ(evalOpcode(Opcode::Mul, -4, 3), -12);
  // Division and modulo by zero are total.
  EXPECT_EQ(evalOpcode(Opcode::Div, 7, 0), 0);
  EXPECT_EQ(evalOpcode(Opcode::Mod, 7, 0), 0);
  EXPECT_EQ(evalOpcode(Opcode::Div, INT64_MIN, -1), INT64_MIN);
  EXPECT_EQ(evalOpcode(Opcode::Mod, INT64_MIN, -1), 0);
  // Shifts mask the amount.
  EXPECT_EQ(evalOpcode(Opcode::Shl, 1, 64), 1);
  EXPECT_EQ(evalOpcode(Opcode::Shl, 1, 65), 2);
  EXPECT_EQ(evalOpcode(Opcode::Shr, -1, 63), 1);
  // Comparisons yield 0/1.
  EXPECT_EQ(evalOpcode(Opcode::CmpLt, 1, 2), 1);
  EXPECT_EQ(evalOpcode(Opcode::CmpGe, 1, 2), 0);
  EXPECT_EQ(evalOpcode(Opcode::Min, 4, -2), -2);
  EXPECT_EQ(evalOpcode(Opcode::Max, 4, -2), 4);
  EXPECT_EQ(evalOpcode(Opcode::Neg, 5, 0), -5);
  EXPECT_EQ(evalOpcode(Opcode::Not, 0, 0), -1);
  // Wrapping arithmetic does not trap.
  EXPECT_EQ(evalOpcode(Opcode::Add, INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(evalOpcode(Opcode::Neg, INT64_MIN, 0), INT64_MIN);
}

TEST(ExprPool, InternsStructurally) {
  ExprPool Pool;
  Expr E1{Opcode::Add, Operand::makeVar(0), Operand::makeVar(1)};
  Expr E2{Opcode::Add, Operand::makeVar(0), Operand::makeVar(1)};
  Expr E3{Opcode::Add, Operand::makeVar(1), Operand::makeVar(0)};
  ExprId A = Pool.intern(E1);
  ExprId B = Pool.intern(E2);
  ExprId C = Pool.intern(E3);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C); // Not commutatively normalized: a+b != b+a.
  EXPECT_EQ(Pool.size(), 2u);
}

TEST(ExprPool, UnaryNormalizesUnusedOperand) {
  ExprPool Pool;
  Expr E1{Opcode::Neg, Operand::makeVar(3), Operand::makeConst(7)};
  Expr E2{Opcode::Neg, Operand::makeVar(3), Operand::makeConst(99)};
  EXPECT_EQ(Pool.intern(E1), Pool.intern(E2));
}

TEST(ExprPool, ReadersIndex) {
  ExprPool Pool;
  ExprId AB =
      Pool.intern(Expr{Opcode::Add, Operand::makeVar(0), Operand::makeVar(1)});
  ExprId AC =
      Pool.intern(Expr{Opcode::Mul, Operand::makeVar(0), Operand::makeVar(2)});
  ExprId C5 = Pool.intern(
      Expr{Opcode::Add, Operand::makeVar(2), Operand::makeConst(5)});

  const BitVector &ReadsA = Pool.exprsReadingVar(0);
  EXPECT_TRUE(ReadsA.test(AB));
  EXPECT_TRUE(ReadsA.test(AC));
  EXPECT_FALSE(ReadsA.test(C5));

  const BitVector &ReadsC = Pool.exprsReadingVar(2);
  EXPECT_FALSE(ReadsC.test(AB));
  EXPECT_TRUE(ReadsC.test(AC));
  EXPECT_TRUE(ReadsC.test(C5));

  // A variable no expression reads.
  const BitVector &ReadsZ = Pool.exprsReadingVar(57);
  EXPECT_EQ(ReadsZ.size(), Pool.size());
  EXPECT_TRUE(ReadsZ.none());

  EXPECT_TRUE(Pool.reads(AB, 0));
  EXPECT_FALSE(Pool.reads(AB, 2));
  EXPECT_EQ(Pool.varsRead(AB), (std::vector<VarId>{0, 1}));
  EXPECT_EQ(Pool.varsRead(C5), (std::vector<VarId>{2}));
}

TEST(ExprPool, VarsReadDeduplicates) {
  ExprPool Pool;
  ExprId XX =
      Pool.intern(Expr{Opcode::Mul, Operand::makeVar(4), Operand::makeVar(4)});
  EXPECT_EQ(Pool.varsRead(XX), (std::vector<VarId>{4}));
}

TEST(Function, VariableTable) {
  Function Fn("f");
  VarId A = Fn.getOrAddVar("a");
  VarId B = Fn.getOrAddVar("b");
  EXPECT_NE(A, B);
  EXPECT_EQ(Fn.getOrAddVar("a"), A);
  EXPECT_EQ(Fn.varName(B), "b");
  EXPECT_EQ(Fn.findVar("b"), B);
  EXPECT_EQ(Fn.findVar("zz"), InvalidVar);
  VarId T = Fn.addTempVar("h");
  EXPECT_EQ(Fn.varName(T), "h.0");
  // Temps dodge collisions with existing names.
  Fn.getOrAddVar("h.1");
  VarId T2 = Fn.addTempVar("h");
  EXPECT_EQ(Fn.varName(T2), "h.2");
}

TEST(Function, EntryAndExit) {
  Function Fn("f");
  BlockId B0 = Fn.addBlock();
  BlockId B1 = Fn.addBlock();
  Fn.addEdge(B0, B1);
  EXPECT_EQ(Fn.entry(), B0);
  EXPECT_EQ(Fn.exit(), B1);
}

TEST(Function, EdgeSymmetry) {
  Function Fn("f");
  BlockId B0 = Fn.addBlock();
  BlockId B1 = Fn.addBlock();
  BlockId B2 = Fn.addBlock();
  Fn.addEdge(B0, B1);
  Fn.addEdge(B0, B2);
  Fn.addEdge(B1, B2);
  EXPECT_EQ(Fn.block(B0).succs(), (std::vector<BlockId>{B1, B2}));
  EXPECT_EQ(Fn.block(B2).preds(), (std::vector<BlockId>{B0, B1}));
}

TEST(Function, RedirectEdgePreservesSlots) {
  Function Fn("f");
  BlockId B0 = Fn.addBlock();
  BlockId B1 = Fn.addBlock();
  BlockId B2 = Fn.addBlock();
  BlockId B3 = Fn.addBlock();
  Fn.addEdge(B0, B1);
  Fn.addEdge(B0, B2);
  Fn.addEdge(B1, B3);
  Fn.addEdge(B2, B3);
  Fn.redirectEdge(B0, 1, B3);
  EXPECT_EQ(Fn.block(B0).succs(), (std::vector<BlockId>{B1, B3}));
  EXPECT_EQ(Fn.block(B2).preds().size(), 0u);
  // B3 now has three preds: B1, B2, B0.
  EXPECT_EQ(Fn.block(B3).preds().size(), 3u);
}

TEST(Function, SplitEdge) {
  Function Fn("f");
  BlockId B0 = Fn.addBlock("x");
  BlockId B1 = Fn.addBlock("y");
  Fn.addEdge(B0, B1);
  BlockId Mid = Fn.splitEdge(B0, 0);
  EXPECT_EQ(Fn.block(B0).succs(), (std::vector<BlockId>{Mid}));
  EXPECT_EQ(Fn.block(Mid).succs(), (std::vector<BlockId>{B1}));
  EXPECT_EQ(Fn.block(Mid).preds(), (std::vector<BlockId>{B0}));
  EXPECT_EQ(Fn.block(B1).preds(), (std::vector<BlockId>{Mid}));
  EXPECT_EQ(Fn.block(Mid).label(), "x.y");
}

TEST(Function, SplitParallelEdges) {
  Function Fn("f");
  BlockId B0 = Fn.addBlock();
  BlockId B1 = Fn.addBlock();
  Fn.addEdge(B0, B1);
  Fn.addEdge(B0, B1); // Parallel edge.
  BlockId Mid = Fn.splitEdge(B0, 0);
  EXPECT_EQ(Fn.block(B0).succs(), (std::vector<BlockId>{Mid, B1}));
  EXPECT_EQ(Fn.block(B1).preds().size(), 2u);
}

TEST(Function, TextRendering) {
  Function Fn("f");
  IRBuilder B(Fn);
  B.startBlock("b0");
  B.op("x", Opcode::Add, B.var("a"), B.var("b"));
  B.op("y", Opcode::Min, B.var("a"), IRBuilder::cst(3));
  B.unop("z", Opcode::Neg, B.var("x"));
  B.copy("w", IRBuilder::cst(-7));

  const auto &I = Fn.block(0).instrs();
  EXPECT_EQ(Fn.instrText(I[0]), "x = a + b");
  EXPECT_EQ(Fn.instrText(I[1]), "y = min a 3");
  EXPECT_EQ(Fn.instrText(I[2]), "z = - x");
  EXPECT_EQ(Fn.instrText(I[3]), "w = -7");
  EXPECT_EQ(Fn.countOperations(), 3u);
}

TEST(IRBuilder, BranchSetsCondVar) {
  Function Fn("f");
  IRBuilder B(Fn);
  BlockId B0 = B.startBlock();
  BlockId T = B.startBlock();
  BlockId F = B.startBlock();
  B.setBlock(B0);
  B.branch("c", T, F);
  EXPECT_TRUE(Fn.block(B0).hasConditionalBranch());
  EXPECT_EQ(*Fn.block(B0).condVar(), Fn.findVar("c"));
}

} // namespace
