//===- tools/bench_gate.cpp - Bench regression gate -----------------------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// The CI regression gate (schema "lcm-bench-gate-v1").  Three modes:
//
//   bench_gate --baseline=BENCH_baseline.json [--out=current.json]
//              [--tolerance=R]
//     Runs the deterministic measured suite in-process, optionally writes
//     the fresh document, compares it against the committed baseline, and
//     exits nonzero on any regression.
//
//   bench_gate --write-baseline=BENCH_baseline.json
//     Runs the suite and (re)writes the baseline.  Do this consciously —
//     the diff of the committed file is the review artifact.
//
//   bench_gate --update
//     Shorthand for the above against the repository's committed
//     BENCH_baseline.json (the path is baked in at configure time), so
//     a conscious re-baseline is one command from any directory.
//
//   bench_gate --compare BASELINE.json CURRENT.json [--tolerance=R]
//     Pure comparison of two existing documents (what the unit tests and
//     ad-hoc investigations use).
//
// The suite measures, for every experiment-corpus program and strategy
// (CSE, MR, BCM, ALCM, LCM): static operation counts, seeded dynamic
// evaluation counts, temp-lifetime metrics, and placement counts, plus
// the LCM solver's pass/word-op cost (round-robin pinned, so pass counts
// are meaningful).  All of those are exact-checked: they are deterministic
// functions of the algorithms, not the machine.  Wall-clock metrics land
// under "timing" and are tolerance-checked (see metrics/Gate.h).
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baseline/GlobalCse.h"
#include "baseline/MorelRenvoise.h"
#include "core/Lcm.h"
#include "core/LocalCse.h"
#include "driver/CorpusDriver.h"
#include "driver/Pipeline.h"
#include "gvn/Gvn.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "metrics/Compare.h"
#include "metrics/Gate.h"
#include "server/IncrementalBench.h"
#include "specpre/SpecPre.h"
#include "support/AllocHook.h"
#include "support/Json.h"
#include "workload/Corpus.h"

using namespace lcm;
using json::Value;

namespace {

const char *SchemaName = "lcm-bench-gate-v1";

std::vector<CorpusEntry> gateCorpus() {
  std::vector<CorpusEntry> Corpus = makeDefaultCorpus();
  for (CorpusEntry &Entry : Corpus) {
    auto Raw = Entry.Make;
    Entry.Make = [Raw] {
      Function Fn = Raw();
      runLocalCse(Fn);
      return Fn;
    };
  }
  return Corpus;
}

Value strategyRecord(const std::string &Name, const Function &Original,
                     const TransformFn &Transform) {
  // Three seeded runs keep the suite fast; determinism is what matters.
  StrategyOutcome O =
      evaluateStrategy(Name, Original, Transform, /*DynSeedBase=*/1,
                       /*NumDynRuns=*/3);
  Value R = Value::object();
  R.set("static_ops", Value::number(O.StaticOps))
      .set("weighted_static_ops", Value::number(O.WeightedStaticOps))
      .set("dyn_evals", Value::number(O.DynamicEvals))
      .set("all_runs_exit", Value::boolean(O.AllRunsReachedExit))
      .set("temp_live_slots", Value::number(O.TempLiveSlots))
      .set("temp_max_pressure", Value::number(O.TempMaxPressure))
      .set("num_temps", Value::number(O.NumTemps))
      .set("blocks_after", Value::number(O.BlocksAfter));
  return R;
}

/// The hot-path allocation contract (docs/HOTPATH.md), measured the same
/// way tests/alloc_regression_test.cpp pins it: after a warm-up, a full
/// parse -> local CSE -> LCM -> print iteration over the corpus performs
/// zero heap allocations.  Exact-gated at 0.  Under sanitizer builds the
/// counting hook is inert (support/AllocHook.h), so the metric is
/// vacuously zero there; the plain CI build carries the real contract.
uint64_t measureSteadyAllocations() {
  std::vector<std::string> Texts;
  for (const CorpusEntry &Entry : makeDefaultCorpus()) {
    Function Fn = Entry.Make();
    Texts.push_back(printFunction(Fn));
  }
  const IRLimits Limits;
  ParserScratch Scratch;
  ParseResult Ir;
  PreRunResult R;
  std::string Out;
  auto Iteration = [&](const std::string &Text) {
    parseFunctionInto(Text, Limits, Scratch, Ir);
    runLocalCse(Ir.Fn);
    runPreInto(Ir.Fn, PreStrategy::Lazy, SolverStrategy::Sparse, R);
    Out.clear();
    printFunction(Ir.Fn, Out);
  };
  for (unsigned I = 0; I != 16; ++I)
    for (const std::string &Text : Texts)
      Iteration(Text);
  const uint64_t Before = alloccount::allocations();
  for (unsigned I = 0; I != 4; ++I)
    for (const std::string &Text : Texts)
      Iteration(Text);
  return alloccount::allocations() - Before;
}

/// Measures everything the gate checks.  Deterministic by construction:
/// the corpus, seeds, and solver strategy are fixed.
Value measureSuite() {
  const auto SuiteStart = std::chrono::steady_clock::now();
  std::vector<CorpusEntry> Corpus = gateCorpus();

  Value Programs = Value::object();
  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    Value P = Value::object();
    P.set("blocks", Value::number(uint64_t(Original.numBlocks())))
        .set("exprs", Value::number(uint64_t(Original.exprs().size())));

    Value Strategies = Value::object();
    Strategies.set("none",
                   strategyRecord("none", Original, [](Function &) {}));
    Strategies.set("CSE", strategyRecord("CSE", Original, [](Function &F) {
                     runGlobalCse(F);
                   }));
    Strategies.set("MR", strategyRecord("MR", Original, [](Function &F) {
                     runMorelRenvoise(F);
                   }));
    Strategies.set("BCM", strategyRecord("BCM", Original, [](Function &F) {
                     runPre(F, PreStrategy::Busy);
                   }));
    Strategies.set("ALCM", strategyRecord("ALCM", Original, [](Function &F) {
                     runPre(F, PreStrategy::AlmostLazy);
                   }));
    Strategies.set("LCM", strategyRecord("LCM", Original, [](Function &F) {
                     runPre(F, PreStrategy::Lazy);
                   }));
    P.set("strategies", std::move(Strategies));

    // Placement counts and solver cost of the paper's transformation.
    // Round-robin is pinned so pass counts measure the classic iteration
    // scheme instead of worklist pop totals.
    Function ForLcm = Original;
    PreRunResult R =
        runPre(ForLcm, PreStrategy::Lazy, SolverStrategy::RoundRobin);
    Value Lcm = Value::object();
    Lcm.set("edge_insertions", Value::number(R.Report.EdgeInsertions))
        .set("node_insertions", Value::number(R.Report.NodeInsertions))
        .set("replacements", Value::number(R.Report.Replacements))
        .set("saves", Value::number(R.Report.Saves))
        .set("split_blocks", Value::number(R.Report.SplitBlocks));
    Value Solver = Value::object();
    Solver.set("avail_passes", Value::number(R.AvailStats.Passes))
        .set("ant_passes", Value::number(R.AntStats.Passes))
        .set("later_passes", Value::number(R.LaterStats.Passes))
        .set("isolation_passes", Value::number(R.IsolationStats.Passes))
        .set("word_ops",
             Value::number(R.AvailStats.WordOps + R.AntStats.WordOps +
                           R.LaterStats.WordOps +
                           R.IsolationStats.WordOps));
    Lcm.set("solver", std::move(Solver));
    P.set("lcm", std::move(Lcm));

    Programs.set(Entry.Name, std::move(P));
  }

  // Aggregate optimality totals: the headline numbers of the paper.
  uint64_t TotalNone = 0, TotalLcm = 0;
  for (const auto &[Name, P] : Programs.members()) {
    const Value *S = P.find("strategies");
    TotalNone += S->find("none")->find("dyn_evals")->asUInt();
    TotalLcm += S->find("LCM")->find("dyn_evals")->asUInt();
  }
  Value Totals = Value::object();
  Totals.set("none_dyn_evals", Value::number(TotalNone))
      .set("lcm_dyn_evals", Value::number(TotalLcm));

  Value Suite = Value::object();
  Suite.set("corpus_size", Value::number(uint64_t(Corpus.size())))
      .set("programs", std::move(Programs))
      .set("totals", std::move(Totals));

  // Speculative placement backend (docs/SPECPRE.md), exact-gated: under
  // the fixed skewed synthetic profile both placements are priced
  // analytically, so every number here is a deterministic function of the
  // algorithms.  A specpre change that alters cuts or costs must re-run
  // `bench_gate --update` and review the diff.
  Value SpecPre = Value::object();
  {
    uint64_t LcmEvals = 0, SpecEvals = 0, Speculated = 0, Improved = 0,
             Regressions = 0;
    for (const CorpusEntry &Entry : Corpus) {
      Function Fn = Entry.Make();
      specpre::EdgeProfile Profile = specpre::synthesizeEdgeProfile(
          Fn, specpre::ProfileMode::Skewed, /*Seed=*/11);
      CfgEdges Edges(Fn);
      LocalProperties LP(Fn);
      specpre::ResolvedProfile RP;
      specpre::resolveProfile(Profile, Fn, Edges, RP);
      LazyCodeMotion Engine(Fn, Edges, LP);
      PrePlacement LcmP = Engine.placement(PreStrategy::Lazy);
      PrePlacement SpecP;
      specpre::SpecPreStats S;
      specpre::computeSpecPrePlacement(Fn, Edges, LP, LcmP, RP, SpecP, S);
      const uint64_t LcmCost =
          specpre::profiledPlacementCost(Fn, Edges, LcmP, RP);
      const uint64_t SpecCost =
          specpre::profiledPlacementCost(Fn, Edges, SpecP, RP);
      LcmEvals += LcmCost;
      SpecEvals += SpecCost;
      Speculated += S.ExprsSpeculated;
      Improved += SpecCost < LcmCost;
      Regressions += SpecCost > LcmCost;
    }
    SpecPre.set("profiled_evals_lcm", Value::number(LcmEvals))
        .set("profiled_evals_spec", Value::number(SpecEvals))
        .set("exprs_speculated", Value::number(Speculated))
        .set("programs_improved", Value::number(Improved))
        .set("regressions", Value::number(Regressions));
  }

  // GVN front end (docs/GVN.md), exact-gated: seeded dynamic evaluation
  // counts of the `gvn,lcm` pipeline against plain lexical LCM on the same
  // corpus, plus the congruence-class/merge totals.  All deterministic
  // functions of the algorithms; `regressions` is pinned at 0 by the
  // merge-never-split contract, so a GVN change that makes any program
  // dynamically worse fails the gate outright.
  Value Gvn = Value::object();
  {
    uint64_t LexEvals = 0, GvnEvals = 0, Merged = 0, Classes = 0,
             Improved = 0, Regressions = 0;
    for (const CorpusEntry &Entry : Corpus) {
      Function Original = Entry.Make();
      StrategyOutcome Lex = evaluateStrategy(
          "LCM", Original,
          [](Function &F) { runPre(F, PreStrategy::Lazy); },
          /*DynSeedBase=*/1, /*NumDynRuns=*/3);
      gvn::GvnReport Report;
      StrategyOutcome Gv = evaluateStrategy(
          "GVN+LCM", Original,
          [&Report](Function &F) {
            // Mirrors the `gvn` pipeline pass: value-number, then restore
            // the LCSE precondition the merges may have broken.
            Report = gvn::runGvn(F);
            runLocalCse(F);
            runPre(F, PreStrategy::Lazy);
          },
          /*DynSeedBase=*/1, /*NumDynRuns=*/3);
      if (!Lex.AllRunsReachedExit || !Gv.AllRunsReachedExit)
        continue;
      LexEvals += Lex.DynamicEvals;
      GvnEvals += Gv.DynamicEvals;
      Merged += Report.MergedExprs;
      Classes += Report.Classes;
      Improved += Gv.DynamicEvals < Lex.DynamicEvals;
      Regressions += Gv.DynamicEvals > Lex.DynamicEvals;
    }
    Gvn.set("dyn_evals_lexical", Value::number(LexEvals))
        .set("dyn_evals_gvn", Value::number(GvnEvals))
        .set("merged_exprs", Value::number(Merged))
        .set("classes", Value::number(Classes))
        .set("programs_improved", Value::number(Improved))
        .set("regressions", Value::number(Regressions));
  }

  // Hot-path contract: exact steady-state allocation count, gated at 0.
  Value Hotpath = Value::object();
  Hotpath.set("steady_allocations",
              Value::number(measureSteadyAllocations()));

  // Incremental reoptimization (docs/INCREMENTAL.md): a fixed stream of
  // 1-block edits replayed down the protocol-v4 delta path and a
  // cacheless full reoptimization side by side.  The counters and the
  // byte-identity of the two paths' responses are deterministic and
  // exact-gated; `delta_speedup_ge5x` is a ratio of the two paths in the
  // same process, so it holds regardless of machine speed (both slow down
  // together).  Raw p50s land under timing for tolerance checking.
  Value EditLoop = Value::object();
  server::EditLoopBenchResult EL = server::runEditLoopBench(/*Edits=*/24);
  EditLoop.set("functions", Value::number(uint64_t(EL.Functions)))
      .set("edits", Value::number(uint64_t(EL.Edits)))
      .set("delta_applied", Value::number(EL.DeltaApplied))
      .set("delta_fallbacks", Value::number(EL.DeltaFallbacks))
      .set("failures", Value::number(EL.Failures))
      .set("delta_full_equal", Value::boolean(EL.DeltaFullEqual))
      .set("delta_speedup_ge5x", Value::boolean(EL.speedupP50() >= 5.0));

  // Timing block (tolerance-checked): suite wall time, the verified
  // parallel pipeline's throughput on a small generated batch, and the
  // hot path's parse/print throughput (one warm scratch, MB/s).
  PipelineParse Parsed = parsePipeline("lcse,lcm,cleanup");
  std::vector<Function> Batch;
  for (const CorpusEntry &E : makeGeneratedCorpus(12, 12))
    Batch.push_back(E.Make());
  CorpusDriverResult Throughput = optimizeCorpus(Batch, Parsed.P);

  double ParseMbPerSec = 0, PrintMbPerSec = 0;
  {
    std::vector<std::string> Texts;
    size_t Bytes = 0;
    std::vector<Function> Fns;
    for (const CorpusEntry &Entry : Corpus) {
      Fns.push_back(Entry.Make());
      Texts.push_back(printFunction(Fns.back()));
      Bytes += Texts.back().size();
    }
    const IRLimits Limits;
    ParserScratch Scratch;
    ParseResult Ir;
    const unsigned Reps = 64;
    auto T0 = std::chrono::steady_clock::now();
    for (unsigned R = 0; R != Reps; ++R)
      for (const std::string &Text : Texts)
        parseFunctionInto(Text, Limits, Scratch, Ir);
    double S = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - T0)
                   .count();
    ParseMbPerSec = S > 0 ? double(Bytes) * Reps / S / 1e6 : 0;
    std::string Out;
    T0 = std::chrono::steady_clock::now();
    for (unsigned R = 0; R != Reps; ++R)
      for (const Function &Fn : Fns) {
        Out.clear();
        printFunction(Fn, Out);
      }
    S = std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    PrintMbPerSec = S > 0 ? double(Bytes) * Reps / S / 1e6 : 0;
  }

  const double SuiteSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    SuiteStart)
          .count();
  Value Timing = Value::object();
  Timing.set("suite_seconds", Value::number(SuiteSeconds))
      .set("corpus_functions_per_second",
           Value::number(Throughput.functionsPerSecond()))
      .set("parse_mb_per_second", Value::number(ParseMbPerSec))
      .set("print_mb_per_second", Value::number(PrintMbPerSec))
      .set("editloop_delta_p50_ms", Value::number(EL.deltaP50()))
      .set("editloop_full_p50_ms", Value::number(EL.fullP50()));

  Value Root = Value::object();
  Root.set("schema", Value::str(SchemaName))
      .set("suite", std::move(Suite))
      .set("specpre", std::move(SpecPre))
      .set("gvn", std::move(Gvn))
      .set("hotpath", std::move(Hotpath))
      .set("editloop", std::move(EditLoop))
      .set("timing", std::move(Timing));
  return Root;
}

int reportGate(const GateResult &G) {
  if (G.Ok) {
    std::printf("bench_gate: PASS (%zu metrics: %zu exact, %zu within "
                "tolerance)\n",
                G.MetricsCompared, G.ExactMetrics, G.ToleranceMetrics);
    return 0;
  }
  std::printf("bench_gate: FAIL (%zu issue%s over %zu metrics)\n",
              G.Issues.size(), G.Issues.size() == 1 ? "" : "s",
              G.MetricsCompared);
  for (const GateIssue &I : G.Issues)
    std::printf("  %-16s %s: %s\n", I.Kind.c_str(), I.Path.c_str(),
                I.Detail.c_str());
  return 1;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_gate --baseline=FILE [--out=FILE] [--tolerance=R]\n"
      "       bench_gate --write-baseline=FILE\n"
      "       bench_gate --update[=FILE]   (default: committed baseline)\n"
      "       bench_gate --compare BASELINE CURRENT [--tolerance=R]\n");
  return 2;
}

} // namespace

// Sanitized builds run the suite many times slower than the build that
// captured the baseline; their wall clock measures the sanitizer, not a
// regression.  Exact metrics stay fully enforced.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LCM_GATE_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LCM_GATE_SANITIZED 1
#endif
#endif
#ifndef LCM_GATE_SANITIZED
#define LCM_GATE_SANITIZED 0
#endif

int main(int argc, char **argv) {
  std::string BaselinePath, WritePath, OutPath;
  std::vector<std::string> ComparePaths;
  bool CompareMode = false;
  GateOptions Opts;
  if (LCM_GATE_SANITIZED) {
    Opts.RelTolerance = 100.0;
    std::fprintf(stderr, "bench_gate: sanitized build, timing tolerance "
                         "widened to %.0fx (exact metrics unaffected)\n",
                 Opts.RelTolerance);
  }

  for (int I = 1; I != argc; ++I) {
    if (std::strncmp(argv[I], "--baseline=", 11) == 0) {
      BaselinePath = argv[I] + 11;
    } else if (std::strncmp(argv[I], "--write-baseline=", 17) == 0) {
      WritePath = argv[I] + 17;
    } else if (std::strcmp(argv[I], "--update") == 0) {
#ifdef LCM_BASELINE_PATH
      WritePath = LCM_BASELINE_PATH;
#else
      std::fprintf(stderr,
                   "error: --update needs the baked-in baseline path; "
                   "use --write-baseline=FILE\n");
      return 2;
#endif
    } else if (std::strncmp(argv[I], "--update=", 9) == 0) {
      WritePath = argv[I] + 9;
    } else if (std::strncmp(argv[I], "--out=", 6) == 0) {
      OutPath = argv[I] + 6;
    } else if (std::strncmp(argv[I], "--tolerance=", 12) == 0) {
      Opts.RelTolerance = std::strtod(argv[I] + 12, nullptr);
    } else if (std::strcmp(argv[I], "--compare") == 0) {
      CompareMode = true;
    } else if (argv[I][0] == '-') {
      return usage();
    } else if (CompareMode && ComparePaths.size() < 2) {
      ComparePaths.push_back(argv[I]);
    } else {
      return usage();
    }
  }

  if (CompareMode) {
    if (ComparePaths.size() != 2)
      return usage();
    json::ParseResult Baseline = json::parseFile(ComparePaths[0]);
    if (!Baseline) {
      std::fprintf(stderr, "error: %s: %s\n", ComparePaths[0].c_str(),
                   Baseline.Error.c_str());
      return 2;
    }
    json::ParseResult Current = json::parseFile(ComparePaths[1]);
    if (!Current) {
      std::fprintf(stderr, "error: %s: %s\n", ComparePaths[1].c_str(),
                   Current.Error.c_str());
      return 2;
    }
    return reportGate(compareReports(Baseline.V, Current.V, Opts));
  }

  if (!WritePath.empty()) {
    Value Suite = measureSuite();
    if (!json::writeFile(WritePath, Suite)) {
      std::fprintf(stderr, "error: cannot write %s\n", WritePath.c_str());
      return 1;
    }
    std::printf("bench_gate: wrote baseline %s\n", WritePath.c_str());
    return 0;
  }

  if (BaselinePath.empty())
    return usage();

  json::ParseResult Baseline = json::parseFile(BaselinePath);
  if (!Baseline) {
    std::fprintf(stderr, "error: %s: %s\n", BaselinePath.c_str(),
                 Baseline.Error.c_str());
    return 2;
  }
  Value Current = measureSuite();
  if (!OutPath.empty() && !json::writeFile(OutPath, Current)) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  return reportGate(compareReports(Baseline.V, Current, Opts));
}
