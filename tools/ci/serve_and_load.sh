#!/usr/bin/env bash
# tools/ci/serve_and_load.sh — the one copy of CI's "start the serving
# stack, wait for readiness, drive it with lcm_loadgen, scrape, tear down
# gracefully" dance (previously copy-pasted across jobs).
#
#   serve_and_load.sh [--build-dir=DIR]
#                     [--serve='<lcm_serve args>']...
#                     [--router='<lcm_router args>']
#                     --loadgen='<lcm_loadgen args>'
#                     [--log=FILE]
#                     [--scrape=FILE=URL]...
#
# Each --serve starts one lcm_serve; --router starts lcm_router after the
# shards are ready.  Readiness is polled from the args themselves: a
# --unix=PATH socket file, or a connect() to a fixed --tcp=PORT.  The
# loadgen's stderr lands in --log (and is echoed) so chaos events become
# an artifact.  --scrape fetches each URL to FILE after the load finishes
# but *before* teardown, so /metrics snapshots see final counters.
# Servers are SIGTERMed and waited (the graceful-drain path, never
# SIGKILL); the script exits with lcm_loadgen's exit code, or 1 if any
# server exited non-zero.
set -u

BUILD_DIR=build
SERVES=()
ROUTER=
LOADGEN=
LOG=
SCRAPES=()

for Arg in "$@"; do
  case "$Arg" in
    --build-dir=*) BUILD_DIR=${Arg#*=} ;;
    --serve=*)     SERVES+=("${Arg#*=}") ;;
    --router=*)    ROUTER=${Arg#*=} ;;
    --loadgen=*)   LOADGEN=${Arg#*=} ;;
    --log=*)       LOG=${Arg#*=} ;;
    --scrape=*)    SCRAPES+=("${Arg#*=}") ;;
    *) echo "serve_and_load.sh: unknown argument: $Arg" >&2; exit 2 ;;
  esac
done
if [ -z "$LOADGEN" ]; then
  echo "serve_and_load.sh: --loadgen is required" >&2
  exit 2
fi

PIDS=()
NAMES=()

# Poll until the endpoint named in the server's own args accepts.
wait_ready() {
  local Args=$1 Path='' Port=''
  eval "set -- $Args"
  for Word in "$@"; do
    case "$Word" in
      --unix=*) Path=${Word#*=} ;;
      --tcp=*)  Port=${Word#*=} ;;
    esac
  done
  for _ in $(seq 1 100); do
    if [ -n "$Path" ] && [ -S "$Path" ]; then return 0; fi
    if [ -n "$Port" ] && [ "$Port" != 0 ] &&
       (exec 3<>"/dev/tcp/127.0.0.1/$Port") 2>/dev/null; then
      exec 3>&- 3<&-
      return 0
    fi
    sleep 0.1
  done
  echo "serve_and_load.sh: server never became ready: $Args" >&2
  return 1
}

# Arg strings are split with shell quoting rules (eval), so values with
# spaces — a --chaos-cmd='lcm_serve --tcp=...' — survive intact.
start() {
  local Bin=$1 Args=$2
  eval "set -- $Args"
  "$BUILD_DIR/tools/$Bin" "$@" &
  PIDS+=($!)
  NAMES+=("$Bin $Args")
  wait_ready "$Args"
}

for Args in ${SERVES[@]+"${SERVES[@]}"}; do
  start lcm_serve "$Args" || exit 1
done
if [ -n "$ROUTER" ]; then
  start lcm_router "$ROUTER" || exit 1
fi

eval "set -- $LOADGEN"
if [ -n "$LOG" ]; then
  "$BUILD_DIR/tools/lcm_loadgen" "$@" 2> "$LOG"
  Code=$?
  cat "$LOG" >&2
else
  "$BUILD_DIR/tools/lcm_loadgen" "$@"
  Code=$?
fi

for Scrape in ${SCRAPES[@]+"${SCRAPES[@]}"}; do
  File=${Scrape%%=*}
  Url=${Scrape#*=}
  if ! curl -sS --max-time 10 -o "$File" "$Url"; then
    echo "serve_and_load.sh: scrape failed: $Url" >&2
    Code=1
  fi
done

for I in "${!PIDS[@]}"; do
  kill -TERM "${PIDS[$I]}" 2>/dev/null
done
for I in "${!PIDS[@]}"; do
  if ! wait "${PIDS[$I]}"; then
    echo "serve_and_load.sh: server exited non-zero: ${NAMES[$I]}" >&2
    Code=1
  fi
done

exit "$Code"
