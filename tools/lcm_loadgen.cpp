//===- tools/lcm_loadgen.cpp - Load-test harness for lcm_serve ------------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Drives a running lcm_serve with N concurrent connections sending M
// requests each, and reports latency percentiles and throughput:
//
//   lcm_loadgen --tcp=PORT --connections=4 --requests=50
//   lcm_loadgen --unix=/tmp/lcm.sock --json=loadgen.json
//
// Request bodies cycle through the default experiment corpus (workload/)
// unless --ir=FILE pins one program.  --dup-ratio=R makes fraction R of
// each connection's requests repeat one hot program (deterministically
// interleaved), exercising the server's result cache: responses carrying
// the `cached` field are split into hit/miss latency populations and the
// observed hit rate is reported.  Every response is validated: the
// schema must match, the echoed id must match the request (except for
// admission-control replies, which the server answers before parsing),
// and an `ok` response must carry IR.  Any lost or corrupted response
// fails the run.
//
// --json[=FILE] emits the measurements in the lcm-bench-v1 schema used by
// the rest of the experiment harness (docs/OBSERVABILITY.md), so CI can
// archive load-test results next to the bench tables.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ir/Printer.h"
#include "server/Client.h"
#include "workload/Corpus.h"

using namespace lcm;
using namespace lcm::server;
using Clock = std::chrono::steady_clock;

namespace {

int usage(int Code) {
  std::fprintf(
      Code == 0 ? stdout : stderr,
      "usage: lcm_loadgen (--tcp=PORT | --unix=PATH) [options]\n"
      "\n"
      "  --connections=N   concurrent client connections (default 4)\n"
      "  --requests=M      requests per connection (default 50)\n"
      "  --pipeline=SPEC   pass pipeline (default \"lcse,lcm\")\n"
      "  --deadline-ms=N   per-request deadline\n"
      "  --check           ask the server to verify semantic equivalence\n"
      "  --ir=FILE         send FILE's IR for every request (default:\n"
      "                    cycle through the experiment corpus)\n"
      "  --dup-ratio=R     fraction (0..1) of requests repeating one hot\n"
      "                    program, to exercise the server's result cache\n"
      "  --json[=FILE]     emit lcm-bench-v1 measurements (stdout or FILE)\n"
      "\n"
      "exit codes: 0 all responses received and well-formed; 1 transport\n"
      "failure, lost response, or corrupted response; 2 usage error.\n");
  return Code;
}

struct WorkerResult {
  std::vector<double> LatencyMs;
  /// `ok` latencies split by the response's `cached` field (only filled
  /// when the server reports one, i.e. runs with a result cache).
  std::vector<double> HitLatencyMs;
  std::vector<double> MissLatencyMs;
  uint64_t Ok = 0;
  uint64_t Overloaded = 0;
  uint64_t DeadlineExceeded = 0;
  uint64_t OtherErrors = 0;
  uint64_t Corrupted = 0;
  std::string TransportError;
};

double percentile(const std::vector<double> &Sorted, unsigned P) {
  if (Sorted.empty())
    return 0.0;
  size_t Index = (Sorted.size() * P) / 100;
  return Sorted[std::min(Index, Sorted.size() - 1)];
}

void runWorker(int TcpPort, const std::string &UnixPath, unsigned Requests,
               unsigned WorkerIndex, const Request &Template,
               const std::vector<std::string> &Programs, double DupRatio,
               WorkerResult &Out) {
  Client C;
  std::string Error;
  bool Connected = TcpPort >= 0
                       ? C.connectTcp(TcpPort, Error, /*RetryMs=*/2000)
                       : C.connectUnix(UnixPath, Error, /*RetryMs=*/2000);
  if (!Connected) {
    Out.TransportError = Error;
    return;
  }
  Out.LatencyMs.reserve(Requests);
  // Bresenham-style interleave: duplicates are spread evenly through the
  // stream instead of bunched, so hit and miss latencies sample the same
  // server load.
  double DupAcc = 0.0;
  for (unsigned I = 0; I != Requests; ++I) {
    Request R = Template;
    R.Id = json::Value::number(int64_t(WorkerIndex) * Requests + I);
    DupAcc += DupRatio;
    if (DupAcc >= 1.0) {
      DupAcc -= 1.0;
      R.Ir = Programs[0]; // The hot program.
    } else {
      R.Ir = Programs[(WorkerIndex + I) % Programs.size()];
    }
    json::Value Response;
    const auto Start = Clock::now();
    if (!C.call(R, Response, Error)) {
      Out.TransportError = Error;
      return;
    }
    const double Ms =
        std::chrono::duration<double, std::milli>(Clock::now() - Start)
            .count();
    Out.LatencyMs.push_back(Ms);

    const json::Value *Schema = Response.find("schema");
    const json::Value *St = Response.find("status");
    if (!Schema || !Schema->isString() ||
        Schema->asString() != ResponseSchema || !St || !St->isString()) {
      ++Out.Corrupted;
      continue;
    }
    std::string Status = St->asString();
    // Admission-control replies are written before the payload is parsed,
    // so they cannot echo the id; everything else must.
    if (Status != "overloaded" && Status != "shutting_down") {
      const json::Value *Id = Response.find("id");
      if (!Id || !(*Id == R.Id)) {
        ++Out.Corrupted;
        continue;
      }
    }
    if (Status == "ok") {
      const json::Value *Ir = Response.find("ir");
      if (!Ir || !Ir->isString() || Ir->asString().empty()) {
        ++Out.Corrupted;
      } else {
        ++Out.Ok;
        const json::Value *Cached = Response.find("cached");
        if (Cached && Cached->isBool())
          (Cached->asBool() ? Out.HitLatencyMs : Out.MissLatencyMs)
              .push_back(Ms);
      }
    } else if (Status == "overloaded") {
      ++Out.Overloaded;
    } else if (Status == "deadline_exceeded") {
      ++Out.DeadlineExceeded;
    } else {
      ++Out.OtherErrors;
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  int TcpPort = -1;
  std::string UnixPath, IrPath, JsonPath;
  bool Json = false;
  unsigned Connections = 4, Requests = 50;
  double DupRatio = 0.0;
  Request Template;

  for (int I = 1; I != argc; ++I) {
    char *End = nullptr;
    if (std::strncmp(argv[I], "--tcp=", 6) == 0) {
      long long N = std::strtoll(argv[I] + 6, &End, 10);
      if (*End != '\0' || N < 0 || N > 65535)
        return usage(2);
      TcpPort = int(N);
    } else if (std::strncmp(argv[I], "--unix=", 7) == 0 &&
               argv[I][7] != '\0') {
      UnixPath = argv[I] + 7;
    } else if (std::strncmp(argv[I], "--connections=", 14) == 0) {
      long long N = std::strtoll(argv[I] + 14, &End, 10);
      if (*End != '\0' || N <= 0 || N > 1024)
        return usage(2);
      Connections = unsigned(N);
    } else if (std::strncmp(argv[I], "--requests=", 11) == 0) {
      long long N = std::strtoll(argv[I] + 11, &End, 10);
      if (*End != '\0' || N <= 0 || N > 10'000'000)
        return usage(2);
      Requests = unsigned(N);
    } else if (std::strncmp(argv[I], "--pipeline=", 11) == 0) {
      Template.Pipeline = argv[I] + 11;
    } else if (std::strncmp(argv[I], "--deadline-ms=", 14) == 0) {
      long long N = std::strtoll(argv[I] + 14, &End, 10);
      if (*End != '\0' || N < 0)
        return usage(2);
      Template.DeadlineMs = N;
    } else if (std::strncmp(argv[I], "--dup-ratio=", 12) == 0) {
      DupRatio = std::strtod(argv[I] + 12, &End);
      if (*End != '\0' || DupRatio < 0.0 || DupRatio > 1.0)
        return usage(2);
    } else if (std::strcmp(argv[I], "--check") == 0) {
      Template.Check = true;
    } else if (std::strncmp(argv[I], "--ir=", 5) == 0 && argv[I][5] != '\0') {
      IrPath = argv[I] + 5;
    } else if (std::strcmp(argv[I], "--json") == 0) {
      Json = true;
    } else if (std::strncmp(argv[I], "--json=", 7) == 0) {
      Json = true;
      JsonPath = argv[I] + 7;
    } else if (std::strcmp(argv[I], "--help") == 0) {
      return usage(0);
    } else {
      return usage(2);
    }
  }
  if ((TcpPort < 0) == UnixPath.empty())
    return usage(2); // Exactly one transport.

  std::vector<std::string> Programs;
  if (!IrPath.empty()) {
    std::FILE *In = std::fopen(IrPath.c_str(), "rb");
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", IrPath.c_str());
      return 1;
    }
    std::string Data;
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
      Data.append(Buf, N);
    std::fclose(In);
    Programs.push_back(std::move(Data));
  } else {
    for (const CorpusEntry &E : makeDefaultCorpus()) {
      Function Fn = E.Make();
      Programs.push_back(printFunction(Fn));
    }
  }

  // Probe the server once for its identity (kernel backend, worker count)
  // before the measured run, so the header and JSON record what actually
  // served the load.  Best-effort: a server predating `server_info`
  // ignores the flag and the fields stay empty.
  std::string SrvBackend;
  uint64_t SrvWorkers = 0, SrvHwThreads = 0;
  {
    Client Probe;
    std::string Error;
    bool Connected = TcpPort >= 0
                         ? Probe.connectTcp(TcpPort, Error, /*RetryMs=*/2000)
                         : Probe.connectUnix(UnixPath, Error, /*RetryMs=*/2000);
    if (Connected) {
      Request R = Template;
      R.Id = json::Value::str("server-info-probe");
      R.Ir = Programs[0];
      R.ServerInfo = true;
      json::Value Response;
      if (Probe.call(R, Response, Error)) {
        if (const json::Value *Srv = Response.find("server")) {
          if (const json::Value *B = Srv->find("kernel_backend"))
            if (B->isString())
              SrvBackend = B->asString();
          if (const json::Value *W = Srv->find("workers"))
            if (W->isNumber())
              SrvWorkers = uint64_t(W->asInt());
          if (const json::Value *H = Srv->find("hardware_threads"))
            if (H->isNumber())
              SrvHwThreads = uint64_t(H->asInt());
        }
      }
    }
  }
  if (!SrvBackend.empty())
    std::printf("server: kernels=%s workers=%llu hw_threads=%llu\n",
                SrvBackend.c_str(), (unsigned long long)SrvWorkers,
                (unsigned long long)SrvHwThreads);

  std::vector<WorkerResult> Results(Connections);
  std::vector<std::thread> Threads;
  const auto Start = Clock::now();
  for (unsigned I = 0; I != Connections; ++I)
    Threads.emplace_back([&, I] {
      runWorker(TcpPort, UnixPath, Requests, I, Template, Programs, DupRatio,
                Results[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  const double WallSeconds =
      std::chrono::duration<double>(Clock::now() - Start).count();

  std::vector<double> Latencies, HitLatencies, MissLatencies;
  uint64_t Ok = 0, Overloaded = 0, DeadlineExceeded = 0, OtherErrors = 0,
           Corrupted = 0;
  bool TransportFailed = false;
  for (const WorkerResult &R : Results) {
    Latencies.insert(Latencies.end(), R.LatencyMs.begin(), R.LatencyMs.end());
    HitLatencies.insert(HitLatencies.end(), R.HitLatencyMs.begin(),
                        R.HitLatencyMs.end());
    MissLatencies.insert(MissLatencies.end(), R.MissLatencyMs.begin(),
                         R.MissLatencyMs.end());
    Ok += R.Ok;
    Overloaded += R.Overloaded;
    DeadlineExceeded += R.DeadlineExceeded;
    OtherErrors += R.OtherErrors;
    Corrupted += R.Corrupted;
    if (!R.TransportError.empty()) {
      std::fprintf(stderr, "error: %s\n", R.TransportError.c_str());
      TransportFailed = true;
    }
  }
  std::sort(Latencies.begin(), Latencies.end());
  std::sort(HitLatencies.begin(), HitLatencies.end());
  std::sort(MissLatencies.begin(), MissLatencies.end());
  const uint64_t CacheReported = HitLatencies.size() + MissLatencies.size();
  const uint64_t Total = uint64_t(Connections) * Requests;
  double Mean = 0.0;
  for (double L : Latencies)
    Mean += L;
  if (!Latencies.empty())
    Mean /= double(Latencies.size());

  std::printf("loadgen: %u connections x %u requests, pipeline \"%s\"\n",
              Connections, Requests, Template.Pipeline.c_str());
  std::printf("responses: %zu/%llu  ok=%llu overloaded=%llu "
              "deadline_exceeded=%llu other=%llu corrupted=%llu\n",
              Latencies.size(), (unsigned long long)Total,
              (unsigned long long)Ok, (unsigned long long)Overloaded,
              (unsigned long long)DeadlineExceeded,
              (unsigned long long)OtherErrors, (unsigned long long)Corrupted);
  std::printf("latency ms: p50=%.3f p90=%.3f p95=%.3f p99=%.3f max=%.3f "
              "mean=%.3f\n",
              percentile(Latencies, 50), percentile(Latencies, 90),
              percentile(Latencies, 95), percentile(Latencies, 99),
              Latencies.empty() ? 0.0 : Latencies.back(), Mean);
  std::printf("throughput: %.1f requests/s over %.3fs\n",
              WallSeconds > 0 ? double(Latencies.size()) / WallSeconds : 0.0,
              WallSeconds);
  if (CacheReported != 0) {
    std::printf("cache: hit_rate=%.3f hits=%zu misses=%zu\n",
                double(HitLatencies.size()) / double(CacheReported),
                HitLatencies.size(), MissLatencies.size());
    std::printf("hit latency ms:  p50=%.3f p90=%.3f p99=%.3f\n",
                percentile(HitLatencies, 50), percentile(HitLatencies, 90),
                percentile(HitLatencies, 99));
    std::printf("miss latency ms: p50=%.3f p90=%.3f p99=%.3f\n",
                percentile(MissLatencies, 50), percentile(MissLatencies, 90),
                percentile(MissLatencies, 99));
  }

  if (Json) {
    json::Value Metrics = json::Value::object();
    Metrics.set("connections", json::Value::number(uint64_t(Connections)))
        .set("requests_per_connection", json::Value::number(uint64_t(Requests)))
        .set("total_requests", json::Value::number(Total))
        .set("responses", json::Value::number(uint64_t(Latencies.size())))
        .set("ok", json::Value::number(Ok))
        .set("overloaded", json::Value::number(Overloaded))
        .set("deadline_exceeded", json::Value::number(DeadlineExceeded))
        .set("other_errors", json::Value::number(OtherErrors))
        .set("corrupted", json::Value::number(Corrupted))
        .set("wall_seconds", json::Value::number(WallSeconds))
        .set("throughput_rps",
             json::Value::number(WallSeconds > 0
                                     ? double(Latencies.size()) / WallSeconds
                                     : 0.0))
        .set("latency_ms_p50", json::Value::number(percentile(Latencies, 50)))
        .set("latency_ms_p90", json::Value::number(percentile(Latencies, 90)))
        .set("latency_ms_p95", json::Value::number(percentile(Latencies, 95)))
        .set("latency_ms_p99", json::Value::number(percentile(Latencies, 99)))
        .set("latency_ms_max", json::Value::number(
                                   Latencies.empty() ? 0.0 : Latencies.back()))
        .set("latency_ms_mean", json::Value::number(Mean));
    if (!SrvBackend.empty()) {
      Metrics.set("server_kernel_backend", json::Value::str(SrvBackend))
          .set("server_workers", json::Value::number(SrvWorkers))
          .set("server_hardware_threads", json::Value::number(SrvHwThreads));
    }
    if (CacheReported != 0) {
      Metrics
          .set("dup_ratio", json::Value::number(DupRatio))
          .set("cache_hits", json::Value::number(uint64_t(HitLatencies.size())))
          .set("cache_misses",
               json::Value::number(uint64_t(MissLatencies.size())))
          .set("cache_hit_rate",
               json::Value::number(double(HitLatencies.size()) /
                                   double(CacheReported)))
          .set("hit_latency_ms_p50",
               json::Value::number(percentile(HitLatencies, 50)))
          .set("hit_latency_ms_p90",
               json::Value::number(percentile(HitLatencies, 90)))
          .set("hit_latency_ms_p99",
               json::Value::number(percentile(HitLatencies, 99)))
          .set("miss_latency_ms_p50",
               json::Value::number(percentile(MissLatencies, 50)))
          .set("miss_latency_ms_p90",
               json::Value::number(percentile(MissLatencies, 90)))
          .set("miss_latency_ms_p99",
               json::Value::number(percentile(MissLatencies, 99)));
    }
    json::Value Section = json::Value::object();
    Section.set("title", json::Value::str("Server load test"));
    Section.set("metrics", std::move(Metrics));
    json::Value Sections = json::Value::object();
    Sections.set("load", std::move(Section));
    json::Value Root = json::Value::object();
    Root.set("schema", json::Value::str("lcm-bench-v1"))
        .set("bench", json::Value::str("lcm_loadgen"))
        .set("sections", std::move(Sections));
    if (JsonPath.empty()) {
      std::printf("%s\n", Root.dump().c_str());
    } else if (!json::writeFile(JsonPath, Root)) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
  }

  if (TransportFailed || Corrupted != 0 || Latencies.size() != Total)
    return 1;
  return 0;
}
