//===- tools/lcm_loadgen.cpp - Load-test harness for lcm_serve ------------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Drives a running lcm_serve with N concurrent connections sending M
// requests each, and reports latency percentiles and throughput:
//
//   lcm_loadgen --tcp=PORT --connections=4 --requests=50
//   lcm_loadgen --unix=/tmp/lcm.sock --json=loadgen.json
//
// Request bodies cycle through the default experiment corpus (workload/)
// unless --ir=FILE pins one program.  --profile-mode=uniform|skewed|
// adversarial attaches a per-program synthetic edge profile (v3 `profile`
// field, docs/SPECPRE.md) to every request and, unless --pipeline says
// otherwise, switches the pipeline to "lcse,specpre" so the server's
// speculative placement backend actually consumes it.
// --profile-skew=S generalizes that to a continuous profile-quality dial:
// S=0 synthesizes the accurate (skewed) shape, S=0.5 is roughly uniform,
// and S=1 inverts the hot arm (adversarial).  Given several steps
// (`--profile-skew=sweep` or a comma list), the loadgen runs one full
// measured load per step and emits a per-step `skew_sweep` table in the
// JSON artifact — the plot-able placement-quality-vs-profile-error curve
// of docs/EXPERIMENTS.md.  --dup-ratio=R makes
// fraction R of
// each connection's requests repeat one hot program (deterministically
// interleaved), exercising the server's result cache: responses carrying
// the `cached` field are split into hit/miss latency populations and the
// observed hit rate is reported.  Every response is validated: the
// schema must match, the echoed id must match the request (except for
// admission-control replies, which the server answers before parsing),
// and an `ok` response must carry IR.  Any lost or corrupted response
// fails the run.
//
// --json[=FILE] emits the measurements in the lcm-bench-v1 schema used by
// the rest of the experiment harness (docs/OBSERVABILITY.md), so CI can
// archive load-test results next to the bench tables.  With --json=FILE a
// stub document carrying `"aborted": true` is flushed before the run
// starts and only replaced by the real measurements on completion, so a
// crashed or killed run still leaves a parseable artifact behind.
//
// --validate stamps every request with the protocol-v2 `validate` flag and
// enforces the reply: an `ok` response must carry `validated: true`, and
// any `validation_failed` response fails the run — the fleet-level wiring
// of the per-request translation-validation check (docs/FLEET.md).
//
// --chaos turns the loadgen into a fault injector: it spawns each
// --chaos-cmd as a supervised child (the shards), then kills one with
// SIGKILL every --chaos-interval-ms and respawns it after
// --chaos-downtime-ms, round-robin, while the measured load runs against
// the router.  Chaos runs assert the strictest outcome: every single
// request must come back `ok` (and validated, with --validate) — a router
// that drops or mis-answers even one request under churn fails the run.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "server/Client.h"
#include "specpre/EdgeProfile.h"
#include "workload/Corpus.h"

using namespace lcm;
using namespace lcm::server;
using Clock = std::chrono::steady_clock;

namespace {

int usage(int Code) {
  std::fprintf(
      Code == 0 ? stdout : stderr,
      "usage: lcm_loadgen (--tcp=PORT | --unix=PATH) [options]\n"
      "\n"
      "  --connections=N   concurrent client connections (default 4)\n"
      "  --requests=M      requests per connection (default 50)\n"
      "  --pipeline=SPEC   pass pipeline (default \"lcse,lcm\")\n"
      "  --deadline-ms=N   per-request deadline\n"
      "  --check           ask the server to verify semantic equivalence\n"
      "  --ir=FILE         send FILE's IR for every request (default:\n"
      "                    cycle through the experiment corpus)\n"
      "  --profile-mode=M  attach a synthetic edge profile to every request\n"
      "                    (M: uniform | skewed | adversarial) and default\n"
      "                    the pipeline to \"lcse,specpre\"\n"
      "  --profile-skew=S  attach synthetic profiles of continuous skew S\n"
      "                    (0 = accurate/skewed, 0.5 ~ uniform, 1 =\n"
      "                    adversarial); S is a value in [0,1], a comma\n"
      "                    list, or `sweep` for 0,0.25,0.5,0.75,1 -- each\n"
      "                    step runs one full measured load and emits a\n"
      "                    plot-able row in the JSON artifact\n"
      "  --dup-ratio=R     fraction (0..1) of requests repeating one hot\n"
      "                    program, to exercise the server's result cache\n"
      "  --pipeline-depth=K  keep K framed requests in flight per\n"
      "                    connection (protocol pipelining); latencies are\n"
      "                    then amortized per batch\n"
      "  --edit-loop[=N]   edit-loop benchmark over one pipelined\n"
      "                    connection: optimize a whole-corpus module once,\n"
      "                    then N times (default 40) send a 1-block delta\n"
      "                    request and an equivalent full-text request in\n"
      "                    flight together, and compare their latencies;\n"
      "                    fails unless every delta applies and delta p50\n"
      "                    beats full p50\n"
      "  --validate        stamp requests with the v2 `validate` flag and\n"
      "                    require `validated: true` on every ok response\n"
      "  --chaos           kill/restart the --chaos-cmd children during the\n"
      "                    run and require every request to come back ok\n"
      "  --chaos-cmd=CMD   a shard command to supervise (repeat per shard;\n"
      "                    spawned before the run, SIGTERMed after)\n"
      "  --chaos-interval-ms=N  time between kills (default 400)\n"
      "  --chaos-downtime-ms=N  kill-to-respawn delay (default 150)\n"
      "  --chaos-warmup-ms=N    spawn-to-load delay (default 1000)\n"
      "  --json[=FILE]     emit lcm-bench-v1 measurements (stdout or FILE;\n"
      "                    FILE gets an `aborted` stub before the run)\n"
      "\n"
      "exit codes: 0 all responses received and well-formed; 1 transport\n"
      "failure, lost response, corrupted response, validation mismatch,\n"
      "or (with --chaos) any non-ok response; 2 usage error.\n");
  return Code;
}

/// One request body: textual IR plus (with --profile-mode) its synthetic
/// edge profile, already in wire form.
struct ProgramEntry {
  std::string Ir;
  json::Value Profile; ///< Null when no profile mode is active.
};

struct WorkerResult {
  std::vector<double> LatencyMs;
  /// `ok` latencies split by the response's `cached` field (only filled
  /// when the server reports one, i.e. runs with a result cache).
  std::vector<double> HitLatencyMs;
  std::vector<double> MissLatencyMs;
  uint64_t Ok = 0;
  uint64_t Overloaded = 0;
  uint64_t DeadlineExceeded = 0;
  uint64_t OtherErrors = 0;
  uint64_t Corrupted = 0;
  uint64_t Validated = 0;           ///< ok responses carrying validated:true.
  uint64_t ValidationMismatches = 0; ///< `validation_failed` responses.
  uint64_t ChangesSum = 0;          ///< Summed `changes` over ok responses.
  std::string TransportError;
};

double percentile(const std::vector<double> &Sorted, unsigned P) {
  if (Sorted.empty())
    return 0.0;
  size_t Index = (Sorted.size() * P) / 100;
  return Sorted[std::min(Index, Sorted.size() - 1)];
}

/// Validates one response and folds it into \p Out under latency \p Ms.
/// \p ExpectId is the id the response must echo, or null when the caller
/// already matched responses to requests (the pipelined path, where
/// Client::callPipelined stamps and verifies batch-index ids itself).
void noteResponse(const json::Value &Response, double Ms,
                  const Request &Template, const json::Value *ExpectId,
                  WorkerResult &Out) {
  Out.LatencyMs.push_back(Ms);

  const json::Value *Schema = Response.find("schema");
  const json::Value *St = Response.find("status");
  if (!Schema || !Schema->isString() ||
      Schema->asString() != ResponseSchema || !St || !St->isString()) {
    ++Out.Corrupted;
    return;
  }
  std::string Status = St->asString();
  // Admission-control replies are written before the payload is parsed,
  // so they cannot echo the id; everything else must.
  if (ExpectId && Status != "overloaded" && Status != "shutting_down") {
    const json::Value *Id = Response.find("id");
    if (!Id || !(*Id == *ExpectId)) {
      ++Out.Corrupted;
      return;
    }
  }
  if (Status == "ok") {
    const json::Value *Ir = Response.find("ir");
    const json::Value *Validated = Response.find("validated");
    bool IsValidated =
        Validated && Validated->isBool() && Validated->asBool();
    if (!Ir || !Ir->isString() || Ir->asString().empty()) {
      ++Out.Corrupted;
    } else if (Template.Validate && !IsValidated) {
      // We asked for validation; an ok response that doesn't attest to
      // it came from a server that silently skipped the check.
      ++Out.Corrupted;
    } else {
      ++Out.Ok;
      if (IsValidated)
        ++Out.Validated;
      const json::Value *Changes = Response.find("changes");
      if (Changes && Changes->isNumber())
        Out.ChangesSum += Changes->asUInt();
      const json::Value *Cached = Response.find("cached");
      if (Cached && Cached->isBool())
        (Cached->asBool() ? Out.HitLatencyMs : Out.MissLatencyMs)
            .push_back(Ms);
    }
  } else if (Status == "overloaded") {
    ++Out.Overloaded;
  } else if (Status == "deadline_exceeded") {
    ++Out.DeadlineExceeded;
  } else if (Status == "validation_failed") {
    ++Out.ValidationMismatches;
  } else {
    ++Out.OtherErrors;
  }
}

void runWorker(int TcpPort, const std::string &UnixPath, unsigned Requests,
               unsigned WorkerIndex, const Request &Template,
               const std::vector<ProgramEntry> &Programs, double DupRatio,
               unsigned PipelineDepth, WorkerResult &Out) {
  Client C;
  std::string Error;
  bool Connected = TcpPort >= 0
                       ? C.connectTcp(TcpPort, Error, /*RetryMs=*/2000)
                       : C.connectUnix(UnixPath, Error, /*RetryMs=*/2000);
  if (!Connected) {
    Out.TransportError = Error;
    return;
  }
  Out.LatencyMs.reserve(Requests);
  // Bresenham-style interleave: duplicates are spread evenly through the
  // stream instead of bunched, so hit and miss latencies sample the same
  // server load.
  double DupAcc = 0.0;
  auto MakeRequest = [&](unsigned I) {
    Request R = Template;
    R.Id = json::Value::number(int64_t(WorkerIndex) * Requests + I);
    DupAcc += DupRatio;
    const ProgramEntry &P = DupAcc >= 1.0
                                ? Programs[0] // The hot program.
                                : Programs[(WorkerIndex + I) %
                                           Programs.size()];
    if (DupAcc >= 1.0)
      DupAcc -= 1.0;
    R.Ir = P.Ir;
    R.Profile = P.Profile;
    return R;
  };

  if (PipelineDepth > 1) {
    // Keep up to PipelineDepth frames in flight on the one connection.
    // Individual completion times are not observable per request (the
    // batch is drained in arrival order), so each request in a batch is
    // charged the amortized batch wall time.
    for (unsigned I = 0; I != Requests;) {
      const unsigned K = std::min(PipelineDepth, Requests - I);
      std::vector<Request> Batch;
      Batch.reserve(K);
      for (unsigned J = 0; J != K; ++J)
        Batch.push_back(MakeRequest(I + J));
      std::vector<json::Value> Responses;
      const auto Start = Clock::now();
      if (!C.callPipelined(Batch, Responses, Error)) {
        Out.TransportError = Error;
        return;
      }
      const double Ms =
          std::chrono::duration<double, std::milli>(Clock::now() - Start)
              .count() /
          double(K);
      for (const json::Value &Response : Responses)
        noteResponse(Response, Ms, Template, /*ExpectId=*/nullptr, Out);
      I += K;
    }
    return;
  }

  for (unsigned I = 0; I != Requests; ++I) {
    Request R = MakeRequest(I);
    json::Value Response;
    const auto Start = Clock::now();
    if (!C.call(R, Response, Error)) {
      Out.TransportError = Error;
      return;
    }
    const double Ms =
        std::chrono::duration<double, std::milli>(Clock::now() - Start)
            .count();
    noteResponse(Response, Ms, Template, &R.Id, Out);
  }
}

/// One full measured load, aggregated across workers with latency vectors
/// already sorted.  Factored out of main so a --profile-skew sweep can
/// repeat the measurement once per step.
struct Aggregate {
  std::vector<double> Latencies, HitLatencies, MissLatencies;
  uint64_t Ok = 0, Overloaded = 0, DeadlineExceeded = 0, OtherErrors = 0,
           Corrupted = 0, Validated = 0, ValidationMismatches = 0,
           ChangesSum = 0;
  bool TransportFailed = false;
  double WallSeconds = 0.0;

  /// Folds another run into this one, so the overall printout and the
  /// exit-code checks span every sweep step.  Leaves the latency vectors
  /// unsorted; the caller re-sorts once after the last merge.
  void merge(const Aggregate &O) {
    Latencies.insert(Latencies.end(), O.Latencies.begin(), O.Latencies.end());
    HitLatencies.insert(HitLatencies.end(), O.HitLatencies.begin(),
                        O.HitLatencies.end());
    MissLatencies.insert(MissLatencies.end(), O.MissLatencies.begin(),
                         O.MissLatencies.end());
    Ok += O.Ok;
    Overloaded += O.Overloaded;
    DeadlineExceeded += O.DeadlineExceeded;
    OtherErrors += O.OtherErrors;
    Corrupted += O.Corrupted;
    Validated += O.Validated;
    ValidationMismatches += O.ValidationMismatches;
    ChangesSum += O.ChangesSum;
    TransportFailed |= O.TransportFailed;
    WallSeconds += O.WallSeconds;
  }
};

Aggregate runLoad(int TcpPort, const std::string &UnixPath,
                  unsigned Connections, unsigned Requests,
                  const Request &Template,
                  const std::vector<ProgramEntry> &Programs,
                  double DupRatio, unsigned PipelineDepth) {
  std::vector<WorkerResult> Results(Connections);
  std::vector<std::thread> Threads;
  const auto Start = Clock::now();
  for (unsigned I = 0; I != Connections; ++I)
    Threads.emplace_back([&, I] {
      runWorker(TcpPort, UnixPath, Requests, I, Template, Programs, DupRatio,
                PipelineDepth, Results[I]);
    });
  for (std::thread &T : Threads)
    T.join();
  Aggregate A;
  A.WallSeconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  for (const WorkerResult &R : Results) {
    A.Latencies.insert(A.Latencies.end(), R.LatencyMs.begin(),
                       R.LatencyMs.end());
    A.HitLatencies.insert(A.HitLatencies.end(), R.HitLatencyMs.begin(),
                          R.HitLatencyMs.end());
    A.MissLatencies.insert(A.MissLatencies.end(), R.MissLatencyMs.begin(),
                           R.MissLatencyMs.end());
    A.Ok += R.Ok;
    A.Overloaded += R.Overloaded;
    A.DeadlineExceeded += R.DeadlineExceeded;
    A.OtherErrors += R.OtherErrors;
    A.Corrupted += R.Corrupted;
    A.Validated += R.Validated;
    A.ValidationMismatches += R.ValidationMismatches;
    A.ChangesSum += R.ChangesSum;
    if (!R.TransportError.empty()) {
      std::fprintf(stderr, "error: %s\n", R.TransportError.c_str());
      A.TransportFailed = true;
    }
  }
  std::sort(A.Latencies.begin(), A.Latencies.end());
  std::sort(A.HitLatencies.begin(), A.HitLatencies.end());
  std::sort(A.MissLatencies.begin(), A.MissLatencies.end());
  return A;
}

//===----------------------------------------------------------------------===//
// Edit-loop benchmark (docs/INCREMENTAL.md)
//===----------------------------------------------------------------------===//

/// Span of the block labelled \p Label in canonical function text.
bool findBlockSpanText(const std::string &Text, const std::string &Label,
                       size_t &Begin, size_t &End) {
  size_t Pos = 0;
  bool In = false;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    size_t LineEnd = Nl == std::string::npos ? Text.size() : Nl;
    std::string_view Line(Text.data() + Pos, LineEnd - Pos);
    if (Line.substr(0, 6) == "block ") {
      if (In) {
        End = Pos;
        return true;
      }
      if (Line.substr(6) == Label) {
        In = true;
        Begin = Pos;
      }
    }
    Pos = Nl == std::string::npos ? Text.size() : Nl + 1;
  }
  End = Text.size();
  return In;
}

std::vector<std::string> blockLabelsOf(const std::string &Text) {
  std::vector<std::string> Labels;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    size_t LineEnd = Nl == std::string::npos ? Text.size() : Nl;
    std::string_view Line(Text.data() + Pos, LineEnd - Pos);
    if (Line.substr(0, 6) == "block ")
      Labels.emplace_back(Line.substr(6));
    Pos = Nl == std::string::npos ? Text.size() : Nl + 1;
  }
  return Labels;
}

/// A 1-block edit: the replacement text for one block of one function,
/// with a fresh computation prepended to its body.
struct OneBlockEdit {
  size_t FnIdx = 0;
  std::string Label;
  std::string NewBlock;
};

OneBlockEdit makeEdit(const std::vector<std::string> &FnTexts, unsigned Salt,
                      uint64_t &RngState) {
  auto Next = [&RngState] {
    RngState = RngState * 6364136223846793005ull + 1442695040888963407ull;
    return RngState >> 33;
  };
  OneBlockEdit E;
  E.FnIdx = size_t(Next() % FnTexts.size());
  const std::vector<std::string> Labels = blockLabelsOf(FnTexts[E.FnIdx]);
  E.Label = Labels[size_t(Next() % Labels.size())];
  size_t B = 0, End = 0;
  findBlockSpanText(FnTexts[E.FnIdx], E.Label, B, End);
  E.NewBlock = FnTexts[E.FnIdx].substr(B, End - B);
  const std::string V = "q" + std::to_string(Salt);
  E.NewBlock.insert(E.NewBlock.find('\n') + 1,
                    "  " + V + " = " + V + " + " + V + "\n");
  return E;
}

/// The edit-loop benchmark: one persistent connection, an initial
/// whole-module optimization, then per edit a v4 delta request and an
/// equivalent full-text request *in flight together* (pipelined, completed
/// out of order, matched by id).  Each carries exactly one never-seen
/// function body, so the pipelined pair isolates what the delta path
/// saves: re-parsing, re-hashing, and re-keying the untouched functions.
int runEditLoop(int TcpPort, const std::string &UnixPath, unsigned Edits,
                bool Validate, bool Json, const std::string &JsonPath) {
  std::vector<std::string> FnTexts, FnNames;
  for (const CorpusEntry &E : makeDefaultCorpus()) {
    Function Fn = E.Make();
    FnTexts.push_back(printFunction(Fn));
    FnNames.push_back(Fn.name());
  }
  auto ModuleText = [&FnTexts] {
    std::string Out;
    for (const std::string &T : FnTexts)
      Out += T;
    return Out;
  };

  Client C;
  std::string Error;
  bool Connected = TcpPort >= 0
                       ? C.connectTcp(TcpPort, Error, /*RetryMs=*/2000)
                       : C.connectUnix(UnixPath, Error, /*RetryMs=*/2000);
  if (!Connected) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  Request Initial;
  Initial.Id = json::Value::str("edit-loop-initial");
  Initial.Ir = ModuleText();
  Initial.Validate = Validate;
  json::Value First;
  if (!C.call(Initial, First, Error)) {
    std::fprintf(stderr, "error: initial request: %s\n", Error.c_str());
    return 1;
  }
  const json::Value *St = First.find("status");
  if (!St || !St->isString() || St->asString() != "ok") {
    std::fprintf(stderr, "error: initial request answered %s\n",
                 First.dump().c_str());
    return 1;
  }
  const json::Value *Key = First.find("cache_key");
  if (!Key || !Key->isString()) {
    std::fprintf(stderr, "error: server reported no cache_key -- the edit "
                         "loop needs a caching server (no --no-cache)\n");
    return 1;
  }
  std::string BaseKey = Key->asString();

  std::vector<double> DeltaMs, FullMs;
  uint64_t Applied = 0, Fallbacks = 0, Validated = 0, Mismatches = 0,
           Failures = 0;
  uint64_t RngState = 0x9e3779b97f4a7c15ull;
  for (unsigned I = 0; I != Edits; ++I) {
    // Edit A advances the chain via the delta path; edit B is an
    // independent probe of the same base, sent as full text.
    const OneBlockEdit A = makeEdit(FnTexts, 2 * I, RngState);
    const OneBlockEdit B = makeEdit(FnTexts, 2 * I + 1, RngState);

    Request Delta;
    Delta.Id = json::Value::number(int64_t(0));
    Delta.BaseKey = BaseKey;
    Delta.Validate = Validate;
    Delta.Patch.push_back({PatchOp::Kind::ReplaceBlock, A.Label, "",
                           FnNames[A.FnIdx], A.NewBlock});

    std::vector<std::string> Probe = FnTexts;
    size_t SB = 0, SE = 0;
    findBlockSpanText(Probe[B.FnIdx], B.Label, SB, SE);
    Probe[B.FnIdx].replace(SB, SE - SB, B.NewBlock);
    Request Full;
    Full.Id = json::Value::number(int64_t(1));
    Full.Validate = Validate;
    for (const std::string &T : Probe)
      Full.Ir += T;

    // Both frames go out before either response is read, so the pair is
    // genuinely in flight together; arrivals are timed individually and
    // matched by their echoed ids (the workers finish in either order).
    const auto Start = Clock::now();
    if (!C.sendPayload(requestToJson(Delta).dump(0), Error) ||
        !C.sendPayload(requestToJson(Full).dump(0), Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    json::Value DeltaResp, FullResp;
    for (int Got = 0; Got != 2; ++Got) {
      json::Value Resp;
      if (!C.recvResponse(Resp, Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      const double Ms =
          std::chrono::duration<double, std::milli>(Clock::now() - Start)
              .count();
      const json::Value *Id = Resp.find("id");
      const int64_t Which = Id && Id->isNumber() ? Id->asInt() : -1;
      if (Which == 0) {
        DeltaMs.push_back(Ms);
        DeltaResp = std::move(Resp);
      } else if (Which == 1) {
        FullMs.push_back(Ms);
        FullResp = std::move(Resp);
      } else {
        std::fprintf(stderr, "error: response with unknown id\n");
        return 1;
      }
    }

    for (const json::Value *Resp : {&DeltaResp, &FullResp}) {
      const json::Value *S = Resp->find("status");
      const std::string Status =
          S && S->isString() ? S->asString() : "(missing)";
      if (Status == "validation_failed") {
        ++Mismatches;
        continue;
      }
      if (Status != "ok") {
        ++Failures;
        std::fprintf(stderr, "error: edit %u answered %s\n", I,
                     Resp->dump().c_str());
        continue;
      }
      const json::Value *V = Resp->find("validated");
      if (V && V->isBool() && V->asBool())
        ++Validated;
      else if (Validate)
        ++Mismatches;
    }
    const json::Value *D = DeltaResp.find("delta");
    if (D && D->isString() && D->asString() == "applied")
      ++Applied;
    else
      ++Fallbacks;

    // Advance the chain: edit A is now the base.
    size_t AB = 0, AE = 0;
    findBlockSpanText(FnTexts[A.FnIdx], A.Label, AB, AE);
    FnTexts[A.FnIdx].replace(AB, AE - AB, A.NewBlock);
    if (const json::Value *NK = DeltaResp.find("cache_key"))
      if (NK->isString())
        BaseKey = NK->asString();
  }

  std::sort(DeltaMs.begin(), DeltaMs.end());
  std::sort(FullMs.begin(), FullMs.end());
  const double DeltaP50 = percentile(DeltaMs, 50);
  const double FullP50 = percentile(FullMs, 50);
  const double Speedup = DeltaP50 > 0 ? FullP50 / DeltaP50 : 0.0;
  std::printf("edit-loop: %zu functions, %u edits over one pipelined "
              "connection\n",
              FnTexts.size(), Edits);
  std::printf("delta latency ms: p50=%.3f p90=%.3f p99=%.3f\n", DeltaP50,
              percentile(DeltaMs, 90), percentile(DeltaMs, 99));
  std::printf("full latency ms:  p50=%.3f p90=%.3f p99=%.3f\n", FullP50,
              percentile(FullMs, 90), percentile(FullMs, 99));
  std::printf("delta: applied=%llu fallbacks=%llu speedup_p50=%.2fx\n",
              (unsigned long long)Applied, (unsigned long long)Fallbacks,
              Speedup);
  if (Validate)
    std::printf("validation: validated=%llu mismatches=%llu\n",
                (unsigned long long)Validated,
                (unsigned long long)Mismatches);

  if (Json) {
    json::Value Metrics = json::Value::object();
    Metrics.set("functions", json::Value::number(uint64_t(FnTexts.size())))
        .set("edits", json::Value::number(uint64_t(Edits)))
        .set("delta_applied", json::Value::number(Applied))
        .set("delta_fallbacks", json::Value::number(Fallbacks))
        .set("delta_latency_ms_p50", json::Value::number(DeltaP50))
        .set("delta_latency_ms_p90",
             json::Value::number(percentile(DeltaMs, 90)))
        .set("delta_latency_ms_p99",
             json::Value::number(percentile(DeltaMs, 99)))
        .set("full_latency_ms_p50", json::Value::number(FullP50))
        .set("full_latency_ms_p90",
             json::Value::number(percentile(FullMs, 90)))
        .set("full_latency_ms_p99",
             json::Value::number(percentile(FullMs, 99)))
        .set("speedup_p50", json::Value::number(Speedup));
    if (Validate)
      Metrics.set("validated", json::Value::number(Validated))
          .set("validation_mismatches", json::Value::number(Mismatches));
    json::Value Section = json::Value::object();
    Section.set("title", json::Value::str("Edit-loop delta vs full"));
    Section.set("metrics", std::move(Metrics));
    json::Value Sections = json::Value::object();
    Sections.set("editloop", std::move(Section));
    json::Value Root = json::Value::object();
    Root.set("schema", json::Value::str("lcm-bench-v1"))
        .set("bench", json::Value::str("lcm_loadgen"))
        .set("aborted", json::Value::boolean(false))
        .set("sections", std::move(Sections));
    if (JsonPath.empty()) {
      std::printf("%s\n", Root.dump().c_str());
    } else if (!json::writeFile(JsonPath, Root)) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
  }

  if (Failures != 0 || Mismatches != 0 || Fallbacks != 0)
    return 1;
  if (!(DeltaP50 < FullP50)) {
    std::fprintf(stderr,
                 "error: delta p50 (%.3fms) did not beat full p50 "
                 "(%.3fms)\n",
                 DeltaP50, FullP50);
    return 1;
  }
  return 0;
}

/// Spawns each shard command as a supervised child, then kills one with
/// SIGKILL every IntervalMs and respawns it DowntimeMs later, round-robin,
/// until stopped.  Events go to stderr so a CI run can archive the chaos
/// log.  `exec` in the shell command line makes the child *be* the shard
/// process, so SIGKILL lands on lcm_serve itself, not on a wrapper shell.
class ChaosSupervisor {
public:
  ChaosSupervisor(std::vector<std::string> Cmds, int IntervalMs,
                  int DowntimeMs)
      : Cmds(std::move(Cmds)), Pids(this->Cmds.size(), -1),
        IntervalMs(IntervalMs), DowntimeMs(DowntimeMs) {}

  bool spawnAll() {
    for (size_t I = 0; I != Cmds.size(); ++I)
      if (!spawn(I))
        return false;
    return true;
  }

  void startKilling() {
    Running.store(true);
    Killer = std::thread([this] { killLoop(); });
  }

  /// Stops the kill loop and SIGTERMs every child, waiting for each.
  void stop() {
    if (Running.exchange(false) && Killer.joinable())
      Killer.join();
    for (size_t I = 0; I != Pids.size(); ++I) {
      if (Pids[I] <= 0)
        continue;
      ::kill(Pids[I], SIGTERM);
      int Status = 0;
      while (::waitpid(Pids[I], &Status, 0) < 0 && errno == EINTR)
        ;
      Pids[I] = -1;
    }
  }

  uint64_t kills() const { return Kills.load(); }
  uint64_t restarts() const { return Restarts.load(); }

private:
  bool spawn(size_t I) {
    pid_t Pid = ::fork();
    if (Pid < 0) {
      std::fprintf(stderr, "chaos: fork: %s\n", std::strerror(errno));
      return false;
    }
    if (Pid == 0) {
      std::string Line = "exec " + Cmds[I];
      ::execl("/bin/sh", "sh", "-c", Line.c_str(), (char *)nullptr);
      std::fprintf(stderr, "chaos: exec: %s\n", std::strerror(errno));
      ::_exit(127);
    }
    Pids[I] = Pid;
    std::fprintf(stderr, "chaos: spawned shard[%zu] pid=%d: %s\n", I,
                 int(Pid), Cmds[I].c_str());
    return true;
  }

  void killLoop() {
    size_t Victim = 0;
    while (Running.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
      if (!Running.load())
        return;
      const size_t I = Victim++ % Pids.size();
      if (Pids[I] <= 0)
        continue;
      std::fprintf(stderr, "chaos: SIGKILL shard[%zu] pid=%d\n", I,
                   int(Pids[I]));
      ::kill(Pids[I], SIGKILL);
      int Status = 0;
      while (::waitpid(Pids[I], &Status, 0) < 0 && errno == EINTR)
        ;
      Pids[I] = -1;
      Kills.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(DowntimeMs));
      if (!Running.load())
        return;
      if (spawn(I))
        Restarts.fetch_add(1);
    }
  }

  std::vector<std::string> Cmds;
  std::vector<pid_t> Pids;
  int IntervalMs;
  int DowntimeMs;
  std::atomic<bool> Running{false};
  std::thread Killer;
  std::atomic<uint64_t> Kills{0};
  std::atomic<uint64_t> Restarts{0};
};

} // namespace

int main(int argc, char **argv) {
  int TcpPort = -1;
  std::string UnixPath, IrPath, JsonPath;
  bool Json = false;
  unsigned Connections = 4, Requests = 50;
  unsigned PipelineDepth = 1;
  long long EditLoop = 0;
  double DupRatio = 0.0;
  bool Chaos = false;
  std::vector<std::string> ChaosCmds;
  long long ChaosIntervalMs = 400, ChaosDowntimeMs = 150,
            ChaosWarmupMs = 1000;
  bool HasProfileMode = false, PipelineSet = false;
  specpre::ProfileMode Mode = specpre::ProfileMode::Uniform;
  std::vector<double> SkewSteps;
  Request Template;

  for (int I = 1; I != argc; ++I) {
    char *End = nullptr;
    if (std::strncmp(argv[I], "--tcp=", 6) == 0) {
      long long N = std::strtoll(argv[I] + 6, &End, 10);
      if (*End != '\0' || N < 0 || N > 65535)
        return usage(2);
      TcpPort = int(N);
    } else if (std::strncmp(argv[I], "--unix=", 7) == 0 &&
               argv[I][7] != '\0') {
      UnixPath = argv[I] + 7;
    } else if (std::strncmp(argv[I], "--connections=", 14) == 0) {
      long long N = std::strtoll(argv[I] + 14, &End, 10);
      if (*End != '\0' || N <= 0 || N > 1024)
        return usage(2);
      Connections = unsigned(N);
    } else if (std::strncmp(argv[I], "--requests=", 11) == 0) {
      long long N = std::strtoll(argv[I] + 11, &End, 10);
      if (*End != '\0' || N <= 0 || N > 10'000'000)
        return usage(2);
      Requests = unsigned(N);
    } else if (std::strncmp(argv[I], "--pipeline=", 11) == 0) {
      Template.Pipeline = argv[I] + 11;
      PipelineSet = true;
    } else if (std::strncmp(argv[I], "--profile-mode=", 15) == 0) {
      if (!specpre::parseProfileMode(argv[I] + 15, Mode)) {
        std::fprintf(stderr, "error: unknown profile mode '%s'\n",
                     argv[I] + 15);
        return usage(2);
      }
      HasProfileMode = true;
    } else if (std::strncmp(argv[I], "--profile-skew=", 15) == 0) {
      const char *Spec = argv[I] + 15;
      SkewSteps.clear();
      if (std::strcmp(Spec, "sweep") == 0) {
        SkewSteps = {0.0, 0.25, 0.5, 0.75, 1.0};
      } else {
        while (*Spec != '\0') {
          double S = std::strtod(Spec, &End);
          if (End == Spec || S < 0.0 || S > 1.0 ||
              (*End != '\0' && *End != ','))
            return usage(2);
          SkewSteps.push_back(S);
          Spec = *End == ',' ? End + 1 : End;
        }
        if (SkewSteps.empty())
          return usage(2);
      }
    } else if (std::strncmp(argv[I], "--pipeline-depth=", 17) == 0) {
      long long N = std::strtoll(argv[I] + 17, &End, 10);
      if (*End != '\0' || N <= 0 || N > 1024)
        return usage(2);
      PipelineDepth = unsigned(N);
    } else if (std::strcmp(argv[I], "--edit-loop") == 0) {
      EditLoop = 40;
    } else if (std::strncmp(argv[I], "--edit-loop=", 12) == 0) {
      EditLoop = std::strtoll(argv[I] + 12, &End, 10);
      if (*End != '\0' || EditLoop <= 0 || EditLoop > 100'000)
        return usage(2);
    } else if (std::strncmp(argv[I], "--deadline-ms=", 14) == 0) {
      long long N = std::strtoll(argv[I] + 14, &End, 10);
      if (*End != '\0' || N < 0)
        return usage(2);
      Template.DeadlineMs = N;
    } else if (std::strncmp(argv[I], "--dup-ratio=", 12) == 0) {
      DupRatio = std::strtod(argv[I] + 12, &End);
      if (*End != '\0' || DupRatio < 0.0 || DupRatio > 1.0)
        return usage(2);
    } else if (std::strcmp(argv[I], "--check") == 0) {
      Template.Check = true;
    } else if (std::strcmp(argv[I], "--validate") == 0) {
      Template.Validate = true;
    } else if (std::strcmp(argv[I], "--chaos") == 0) {
      Chaos = true;
    } else if (std::strncmp(argv[I], "--chaos-cmd=", 12) == 0 &&
               argv[I][12] != '\0') {
      ChaosCmds.push_back(argv[I] + 12);
    } else if (std::strncmp(argv[I], "--chaos-interval-ms=", 20) == 0) {
      ChaosIntervalMs = std::strtoll(argv[I] + 20, &End, 10);
      if (*End != '\0' || ChaosIntervalMs <= 0)
        return usage(2);
    } else if (std::strncmp(argv[I], "--chaos-downtime-ms=", 20) == 0) {
      ChaosDowntimeMs = std::strtoll(argv[I] + 20, &End, 10);
      if (*End != '\0' || ChaosDowntimeMs < 0)
        return usage(2);
    } else if (std::strncmp(argv[I], "--chaos-warmup-ms=", 18) == 0) {
      ChaosWarmupMs = std::strtoll(argv[I] + 18, &End, 10);
      if (*End != '\0' || ChaosWarmupMs < 0)
        return usage(2);
    } else if (std::strncmp(argv[I], "--ir=", 5) == 0 && argv[I][5] != '\0') {
      IrPath = argv[I] + 5;
    } else if (std::strcmp(argv[I], "--json") == 0) {
      Json = true;
    } else if (std::strncmp(argv[I], "--json=", 7) == 0) {
      Json = true;
      JsonPath = argv[I] + 7;
    } else if (std::strcmp(argv[I], "--help") == 0) {
      return usage(0);
    } else {
      return usage(2);
    }
  }
  if ((TcpPort < 0) == UnixPath.empty())
    return usage(2); // Exactly one transport.
  if (Chaos && ChaosCmds.empty()) {
    std::fprintf(stderr, "error: --chaos needs at least one --chaos-cmd\n");
    return usage(2);
  }
  if (HasProfileMode && !SkewSteps.empty()) {
    std::fprintf(stderr,
                 "error: --profile-mode and --profile-skew are exclusive\n");
    return usage(2);
  }
  if (HasProfileMode || !SkewSteps.empty()) {
    if (HasProfileMode)
      Template.ProfileMode = specpre::profileModeName(Mode);
    // The profile only matters if something consumes it; unless the caller
    // pinned a pipeline, route placement through the speculative backend.
    if (!PipelineSet)
      Template.Pipeline = "lcse,specpre";
  }

  // Flush the aborted stub first thing: if this process dies mid-run (a
  // chaos experiment gone wrong, a CI timeout), the artifact is still a
  // parseable lcm-bench-v1 document instead of a missing file.
  if (Json && !JsonPath.empty()) {
    json::Value Stub = json::Value::object();
    Stub.set("schema", json::Value::str("lcm-bench-v1"))
        .set("bench", json::Value::str("lcm_loadgen"))
        .set("aborted", json::Value::boolean(true))
        .set("aborted_reason", json::Value::str("run did not complete"))
        .set("sections", json::Value::object());
    if (!json::writeFile(JsonPath, Stub)) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
  }

  if (EditLoop > 0) {
    if (Chaos || HasProfileMode || !SkewSteps.empty() || !IrPath.empty() ||
        DupRatio != 0.0) {
      std::fprintf(stderr,
                   "error: --edit-loop generates its own workload and is "
                   "exclusive with --chaos, --profile-*, --ir, and "
                   "--dup-ratio\n");
      return usage(2);
    }
    return runEditLoop(TcpPort, UnixPath, unsigned(EditLoop),
                       Template.Validate, Json, JsonPath);
  }

  // With a profile mode each program carries its own synthetic profile:
  // counts are per-CFG, so one profile cannot serve the whole corpus.  The
  // synthesis seed is fixed so reruns send byte-identical requests (and
  // the server's profile-keyed cache behaves the same run to run).
  std::vector<ProgramEntry> Programs;
  // Kept only for --profile-skew: each sweep step re-synthesizes every
  // program's profile from its CFG.
  std::vector<Function> SkewFns;
  auto AddProgram = [&](const Function &Fn) {
    ProgramEntry P;
    P.Ir = printFunction(Fn);
    if (HasProfileMode)
      P.Profile =
          specpre::profileToJson(specpre::synthesizeEdgeProfile(Fn, Mode,
                                                                /*Seed=*/11));
    if (!SkewSteps.empty())
      SkewFns.push_back(Fn);
    Programs.push_back(std::move(P));
  };
  if (!IrPath.empty()) {
    std::FILE *In = std::fopen(IrPath.c_str(), "rb");
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", IrPath.c_str());
      return 1;
    }
    std::string Data;
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
      Data.append(Buf, N);
    std::fclose(In);
    if (HasProfileMode || !SkewSteps.empty()) {
      // Profile synthesis needs the CFG, so the file must actually parse.
      ParseResult PR = parseFunction(Data);
      if (!PR) {
        std::fprintf(stderr, "error: %s: %s\n", IrPath.c_str(),
                     PR.Error.c_str());
        return 1;
      }
      AddProgram(PR.Fn);
    } else {
      ProgramEntry P;
      P.Ir = std::move(Data);
      Programs.push_back(std::move(P));
    }
  } else {
    for (const CorpusEntry &E : makeDefaultCorpus())
      AddProgram(E.Make());
  }

  // With --profile-skew every program's profile is interpolated between
  // the accurate and adversarial synthetic shapes at skew S
  // (docs/SPECPRE.md); the first step's profiles are installed up front so
  // the server-info probe below already carries one.
  auto ApplySkew = [&](double S) {
    for (size_t I = 0; I != Programs.size(); ++I)
      Programs[I].Profile = specpre::profileToJson(
          specpre::synthesizeSkewedProfile(SkewFns[I], /*Seed=*/11, S));
  };
  auto SkewLabel = [](double S) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "skew:%.2f", S);
    return std::string(Buf);
  };
  if (!SkewSteps.empty()) {
    ApplySkew(SkewSteps.front());
    Template.ProfileMode = SkewLabel(SkewSteps.front());
  }

  // Chaos children come up before anything talks to the router, and get a
  // warmup window to bind their sockets and be probed healthy.
  ChaosSupervisor Supervisor(ChaosCmds, int(ChaosIntervalMs),
                             int(ChaosDowntimeMs));
  if (Chaos) {
    if (!Supervisor.spawnAll())
      return 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(ChaosWarmupMs));
  }

  // Probe the server once for its identity (kernel backend, worker count)
  // before the measured run, so the header and JSON record what actually
  // served the load.  Best-effort: a server predating `server_info`
  // ignores the flag and the fields stay empty.  The probe is a real
  // request, so it shows up in the server's own request counters —
  // ProbeRequests lets a scrape-reconciliation subtract it.
  std::string SrvBackend, SrvStrategy, SrvProfileMode;
  uint64_t SrvWorkers = 0, SrvHwThreads = 0, ProbeRequests = 0;
  {
    Client Probe;
    std::string Error;
    bool Connected = TcpPort >= 0
                         ? Probe.connectTcp(TcpPort, Error, /*RetryMs=*/2000)
                         : Probe.connectUnix(UnixPath, Error, /*RetryMs=*/2000);
    if (Connected) {
      Request R = Template;
      R.Id = json::Value::str("server-info-probe");
      R.Ir = Programs[0].Ir;
      R.Profile = Programs[0].Profile;
      R.ServerInfo = true;
      json::Value Response;
      if (Probe.call(R, Response, Error)) {
        ++ProbeRequests;
        if (const json::Value *Srv = Response.find("server")) {
          if (const json::Value *B = Srv->find("kernel_backend"))
            if (B->isString())
              SrvBackend = B->asString();
          if (const json::Value *W = Srv->find("workers"))
            if (W->isNumber())
              SrvWorkers = uint64_t(W->asInt());
          if (const json::Value *H = Srv->find("hardware_threads"))
            if (H->isNumber())
              SrvHwThreads = uint64_t(H->asInt());
          if (const json::Value *P = Srv->find("placement_strategy"))
            if (P->isString())
              SrvStrategy = P->asString();
          if (const json::Value *M = Srv->find("profile_mode"))
            if (M->isString())
              SrvProfileMode = M->asString();
        }
      }
    }
  }
  if (!SrvBackend.empty())
    std::printf("server: kernels=%s workers=%llu hw_threads=%llu%s%s%s%s\n",
                SrvBackend.c_str(), (unsigned long long)SrvWorkers,
                (unsigned long long)SrvHwThreads,
                SrvStrategy.empty() ? "" : " placement=",
                SrvStrategy.c_str(),
                SrvProfileMode.empty() ? "" : " profile_mode=",
                SrvProfileMode.c_str());

  if (Chaos)
    Supervisor.startKilling();

  Aggregate Agg;
  json::Value SkewRows = json::Value::array();
  if (SkewSteps.size() > 1) {
    // Sweep: one full measured load per skew step, profiles re-synthesized
    // per step with everything else held fixed.  Per-step rows feed the
    // JSON artifact so the placement-quality trend (mean `changes` per ok
    // response as the profile degrades toward adversarial) plots directly.
    for (double S : SkewSteps) {
      ApplySkew(S);
      Request StepTemplate = Template;
      StepTemplate.ProfileMode = SkewLabel(S);
      Aggregate A = runLoad(TcpPort, UnixPath, Connections, Requests,
                            StepTemplate, Programs, DupRatio, PipelineDepth);
      const double MeanChanges =
          A.Ok ? double(A.ChangesSum) / double(A.Ok) : 0.0;
      const double Rps = A.WallSeconds > 0
                             ? double(A.Latencies.size()) / A.WallSeconds
                             : 0.0;
      std::printf("skew=%.2f ok=%llu/%llu changes_mean=%.3f p50=%.3fms "
                  "p99=%.3fms rps=%.1f\n",
                  S, (unsigned long long)A.Ok,
                  (unsigned long long)(uint64_t(Connections) * Requests),
                  MeanChanges, percentile(A.Latencies, 50),
                  percentile(A.Latencies, 99), Rps);
      json::Value Row = json::Value::object();
      Row.set("skew", json::Value::number(S))
          .set("ok", json::Value::number(A.Ok))
          .set("responses", json::Value::number(uint64_t(A.Latencies.size())))
          .set("changes_mean", json::Value::number(MeanChanges))
          .set("latency_ms_p50",
               json::Value::number(percentile(A.Latencies, 50)))
          .set("latency_ms_p90",
               json::Value::number(percentile(A.Latencies, 90)))
          .set("latency_ms_p99",
               json::Value::number(percentile(A.Latencies, 99)))
          .set("throughput_rps", json::Value::number(Rps));
      SkewRows.push(std::move(Row));
      Agg.merge(A);
    }
    std::sort(Agg.Latencies.begin(), Agg.Latencies.end());
    std::sort(Agg.HitLatencies.begin(), Agg.HitLatencies.end());
    std::sort(Agg.MissLatencies.begin(), Agg.MissLatencies.end());
  } else {
    Agg = runLoad(TcpPort, UnixPath, Connections, Requests, Template,
                  Programs, DupRatio, PipelineDepth);
  }

  if (Chaos)
    Supervisor.stop();

  std::vector<double> &Latencies = Agg.Latencies;
  std::vector<double> &HitLatencies = Agg.HitLatencies;
  std::vector<double> &MissLatencies = Agg.MissLatencies;
  const uint64_t Ok = Agg.Ok, Overloaded = Agg.Overloaded,
                 DeadlineExceeded = Agg.DeadlineExceeded,
                 OtherErrors = Agg.OtherErrors, Corrupted = Agg.Corrupted,
                 Validated = Agg.Validated,
                 ValidationMismatches = Agg.ValidationMismatches;
  const bool TransportFailed = Agg.TransportFailed;
  const double WallSeconds = Agg.WallSeconds;
  const uint64_t CacheReported = HitLatencies.size() + MissLatencies.size();
  const uint64_t Total = uint64_t(Connections) * Requests *
                         (SkewSteps.size() > 1 ? SkewSteps.size() : 1);
  double Mean = 0.0;
  for (double L : Latencies)
    Mean += L;
  if (!Latencies.empty())
    Mean /= double(Latencies.size());

  std::printf("loadgen: %u connections x %u requests, pipeline \"%s\"\n",
              Connections, Requests, Template.Pipeline.c_str());
  std::printf("responses: %zu/%llu  ok=%llu overloaded=%llu "
              "deadline_exceeded=%llu other=%llu corrupted=%llu\n",
              Latencies.size(), (unsigned long long)Total,
              (unsigned long long)Ok, (unsigned long long)Overloaded,
              (unsigned long long)DeadlineExceeded,
              (unsigned long long)OtherErrors, (unsigned long long)Corrupted);
  if (Template.Validate)
    std::printf("validation: validated=%llu mismatches=%llu\n",
                (unsigned long long)Validated,
                (unsigned long long)ValidationMismatches);
  if (Chaos)
    std::printf("chaos: kills=%llu restarts=%llu\n",
                (unsigned long long)Supervisor.kills(),
                (unsigned long long)Supervisor.restarts());
  std::printf("latency ms: p50=%.3f p90=%.3f p95=%.3f p99=%.3f max=%.3f "
              "mean=%.3f\n",
              percentile(Latencies, 50), percentile(Latencies, 90),
              percentile(Latencies, 95), percentile(Latencies, 99),
              Latencies.empty() ? 0.0 : Latencies.back(), Mean);
  std::printf("throughput: %.1f requests/s over %.3fs\n",
              WallSeconds > 0 ? double(Latencies.size()) / WallSeconds : 0.0,
              WallSeconds);
  if (CacheReported != 0) {
    std::printf("cache: hit_rate=%.3f hits=%zu misses=%zu\n",
                double(HitLatencies.size()) / double(CacheReported),
                HitLatencies.size(), MissLatencies.size());
    std::printf("hit latency ms:  p50=%.3f p90=%.3f p99=%.3f\n",
                percentile(HitLatencies, 50), percentile(HitLatencies, 90),
                percentile(HitLatencies, 99));
    std::printf("miss latency ms: p50=%.3f p90=%.3f p99=%.3f\n",
                percentile(MissLatencies, 50), percentile(MissLatencies, 90),
                percentile(MissLatencies, 99));
  }

  if (Json) {
    json::Value Metrics = json::Value::object();
    Metrics.set("connections", json::Value::number(uint64_t(Connections)))
        .set("requests_per_connection", json::Value::number(uint64_t(Requests)))
        .set("total_requests", json::Value::number(Total))
        .set("responses", json::Value::number(uint64_t(Latencies.size())))
        .set("ok", json::Value::number(Ok))
        .set("overloaded", json::Value::number(Overloaded))
        .set("deadline_exceeded", json::Value::number(DeadlineExceeded))
        .set("other_errors", json::Value::number(OtherErrors))
        .set("corrupted", json::Value::number(Corrupted))
        .set("probe_requests", json::Value::number(ProbeRequests))
        .set("wall_seconds", json::Value::number(WallSeconds))
        .set("throughput_rps",
             json::Value::number(WallSeconds > 0
                                     ? double(Latencies.size()) / WallSeconds
                                     : 0.0))
        .set("latency_ms_p50", json::Value::number(percentile(Latencies, 50)))
        .set("latency_ms_p90", json::Value::number(percentile(Latencies, 90)))
        .set("latency_ms_p95", json::Value::number(percentile(Latencies, 95)))
        .set("latency_ms_p99", json::Value::number(percentile(Latencies, 99)))
        .set("latency_ms_max", json::Value::number(
                                   Latencies.empty() ? 0.0 : Latencies.back()))
        .set("latency_ms_mean", json::Value::number(Mean));
    if (Template.Validate)
      Metrics.set("validated", json::Value::number(Validated))
          .set("validation_mismatches",
               json::Value::number(ValidationMismatches));
    if (Chaos)
      Metrics.set("chaos_kills", json::Value::number(Supervisor.kills()))
          .set("chaos_restarts", json::Value::number(Supervisor.restarts()));
    if (!SrvBackend.empty()) {
      Metrics.set("server_kernel_backend", json::Value::str(SrvBackend))
          .set("server_workers", json::Value::number(SrvWorkers))
          .set("server_hardware_threads", json::Value::number(SrvHwThreads));
    }
    // What placement regime this run actually exercised: the mode the
    // loadgen requested, and the strategy the server attested to (absent
    // on pre-v3 servers).
    Metrics.set(
        "placement_strategy",
        json::Value::str(!SrvStrategy.empty()
                             ? SrvStrategy
                             : (HasProfileMode || !SkewSteps.empty()
                                    ? "speculative"
                                    : "classic")));
    if (HasProfileMode)
      Metrics.set("profile_mode",
                  json::Value::str(specpre::profileModeName(Mode)));
    if (!SkewSteps.empty()) {
      Metrics.set("profile_mode",
                  json::Value::str(SkewSteps.size() > 1
                                       ? std::string("skew-sweep")
                                       : Template.ProfileMode));
      Metrics.set("profile_skew_steps",
                  json::Value::number(uint64_t(SkewSteps.size())));
      if (SkewSteps.size() > 1)
        Metrics.set("skew_sweep", std::move(SkewRows));
      else
        Metrics.set("profile_skew", json::Value::number(SkewSteps.front()));
    }
    if (CacheReported != 0) {
      Metrics
          .set("dup_ratio", json::Value::number(DupRatio))
          .set("cache_hits", json::Value::number(uint64_t(HitLatencies.size())))
          .set("cache_misses",
               json::Value::number(uint64_t(MissLatencies.size())))
          .set("cache_hit_rate",
               json::Value::number(double(HitLatencies.size()) /
                                   double(CacheReported)))
          .set("hit_latency_ms_p50",
               json::Value::number(percentile(HitLatencies, 50)))
          .set("hit_latency_ms_p90",
               json::Value::number(percentile(HitLatencies, 90)))
          .set("hit_latency_ms_p99",
               json::Value::number(percentile(HitLatencies, 99)))
          .set("miss_latency_ms_p50",
               json::Value::number(percentile(MissLatencies, 50)))
          .set("miss_latency_ms_p90",
               json::Value::number(percentile(MissLatencies, 90)))
          .set("miss_latency_ms_p99",
               json::Value::number(percentile(MissLatencies, 99)));
    }
    json::Value Section = json::Value::object();
    Section.set("title", json::Value::str("Server load test"));
    Section.set("metrics", std::move(Metrics));
    json::Value Sections = json::Value::object();
    Sections.set("load", std::move(Section));
    json::Value Root = json::Value::object();
    Root.set("schema", json::Value::str("lcm-bench-v1"))
        .set("bench", json::Value::str("lcm_loadgen"))
        .set("aborted", json::Value::boolean(false))
        .set("sections", std::move(Sections));
    if (JsonPath.empty()) {
      std::printf("%s\n", Root.dump().c_str());
    } else if (!json::writeFile(JsonPath, Root)) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
  }

  if (TransportFailed || Corrupted != 0 || Latencies.size() != Total)
    return 1;
  if (ValidationMismatches != 0) {
    std::fprintf(stderr, "error: %llu validation mismatch(es)\n",
                 (unsigned long long)ValidationMismatches);
    return 1;
  }
  if (Chaos && Ok != Total) {
    std::fprintf(stderr,
                 "error: chaos run dropped answers: ok=%llu of %llu\n",
                 (unsigned long long)Ok, (unsigned long long)Total);
    return 1;
  }
  return 0;
}
