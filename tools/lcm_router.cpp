//===- tools/lcm_router.cpp - Consistent-hash router daemon ---------------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Fronts N lcm_serve shards with the consistent-hash router (src/server/
// Router.h), speaking the same framed protocol to clients that a single
// shard does:
//
//   lcm_router --tcp=0 --shard=7001 --shard=7002 --shard=7003
//   lcm_router --tcp=9000 --shard-unix=/tmp/lcm-a.sock --metrics-port=9100
//
// Requests route by consistent hash of their content-defining fields, so
// repeat programs keep hitting the same shard's warm cache; failed shards
// are retried with backoff and failed over (docs/FLEET.md).  SIGTERM/
// SIGINT drain exactly like lcm_serve: admitted requests are still
// forwarded and answered.  --metrics-port exposes Prometheus text metrics
// on a dedicated listener.
//
//===----------------------------------------------------------------------===//

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "server/Metrics.h"
#include "server/Router.h"
#include "support/Stats.h"

using namespace lcm;
using namespace lcm::server;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: lcm_router (--tcp=PORT | --unix=PATH) --shard=PORT...\n"
      "                  [--shard-unix=PATH]... [--workers=N] [--queue=N]\n"
      "                  [--vnodes=N] [--max-attempts=N] [--backoff-ms=N]\n"
      "                  [--health-interval-ms=N] [--metrics-port=PORT]\n"
      "                  [--cache-bytes=N]\n"
      "\n"
      "  --tcp=PORT             client listener on 127.0.0.1:PORT (0 =\n"
      "                         ephemeral; the bound port is printed)\n"
      "  --unix=PATH            client listener on a Unix-domain socket\n"
      "  --shard=PORT           backend lcm_serve on 127.0.0.1:PORT\n"
      "                         (repeat per shard)\n"
      "  --shard-unix=PATH      backend lcm_serve on a Unix socket\n"
      "  --workers=N            forwarding worker threads (default 4)\n"
      "  --queue=N              bounded request queue capacity\n"
      "  --vnodes=N             virtual nodes per shard on the hash ring\n"
      "  --max-attempts=N       forward attempts before `unavailable`\n"
      "  --backoff-ms=N         base retry backoff (doubles, capped)\n"
      "  --health-interval-ms=N unhealthy-shard reprobe period\n"
      "  --metrics-port=PORT    Prometheus /metrics on 127.0.0.1:PORT\n"
      "                         (0 = ephemeral; the bound port is printed)\n"
      "  --cache-bytes=N        router-side response cache budget (LRU,\n"
      "                         `ok` responses only; 0 = disabled)\n"
      "\n"
      "SIGTERM/SIGINT drain gracefully: admitted requests are forwarded\n"
      "and answered, then the router exits 0.\n");
  return 2;
}

bool parseNum(const char *Arg, const char *Prefix, long long &Out) {
  size_t N = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, N) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtoll(Arg + N, &End, 10);
  return End && *End == '\0' && Arg[N] != '\0';
}

int SignalPipe[2] = {-1, -1};

void onSignal(int) {
  char Byte = 1;
  ssize_t Ignored = ::write(SignalPipe[1], &Byte, 1);
  (void)Ignored;
}

} // namespace

int main(int argc, char **argv) {
  RouterOptions Opts;
  int MetricsPort = -1;
  long long N = 0;
  for (int I = 1; I != argc; ++I) {
    if (parseNum(argv[I], "--tcp=", N) && N >= 0 && N <= 65535) {
      Opts.TcpPort = int(N);
    } else if (std::strncmp(argv[I], "--unix=", 7) == 0 &&
               argv[I][7] != '\0') {
      Opts.UnixPath = argv[I] + 7;
    } else if (parseNum(argv[I], "--shard=", N) && N > 0 && N <= 65535) {
      ShardEndpoint Ep;
      Ep.TcpPort = int(N);
      Opts.Shards.push_back(Ep);
    } else if (std::strncmp(argv[I], "--shard-unix=", 13) == 0 &&
               argv[I][13] != '\0') {
      ShardEndpoint Ep;
      Ep.UnixPath = argv[I] + 13;
      Opts.Shards.push_back(Ep);
    } else if (parseNum(argv[I], "--workers=", N) && N > 0 && N <= 4096) {
      Opts.Workers = unsigned(N);
    } else if (parseNum(argv[I], "--queue=", N) && N > 0 && N <= 1'000'000) {
      Opts.QueueCapacity = size_t(N);
    } else if (parseNum(argv[I], "--vnodes=", N) && N > 0 && N <= 4096) {
      Opts.VirtualNodes = unsigned(N);
    } else if (parseNum(argv[I], "--max-attempts=", N) && N > 0 && N <= 64) {
      Opts.MaxAttempts = unsigned(N);
    } else if (parseNum(argv[I], "--backoff-ms=", N) && N >= 0 &&
               N <= 10'000) {
      Opts.RetryBackoffMs = int(N);
    } else if (parseNum(argv[I], "--health-interval-ms=", N) && N > 0 &&
               N <= 60'000) {
      Opts.HealthIntervalMs = int(N);
    } else if (parseNum(argv[I], "--metrics-port=", N) && N >= 0 &&
               N <= 65535) {
      MetricsPort = int(N);
    } else if (parseNum(argv[I], "--cache-bytes=", N) && N >= 0) {
      Opts.CacheBytes = size_t(N);
    } else {
      return usage();
    }
  }
  if ((Opts.TcpPort < 0 && Opts.UnixPath.empty()) || Opts.Shards.empty())
    return usage();

  if (::pipe(SignalPipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  Router R(Opts);
  std::string Error;
  if (!R.start(Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  MetricsServer Metrics;
  if (MetricsPort >= 0) {
    auto Render = [&R] {
      Exposition E;
      writeCommonMetrics(E, "router", Stats::get("router.requests"),
                         R.queueDepth(), "router.response.");
      E.gauge("lcm_router_shard_up",
              "1 while the shard is believed healthy.");
      for (const Router::ShardStatus &S : R.shardStatus())
        E.label("shard", S.Name).sample(uint64_t(S.Healthy ? 1 : 0));
      E.counter("lcm_router_shard_forwards_total",
                "Successful exchanges per shard.");
      for (const Router::ShardStatus &S : R.shardStatus())
        E.label("shard", S.Name).sample(S.Forwards);
      E.counter("lcm_router_shard_failures_total",
                "Connect/IO failures charged per shard.");
      for (const Router::ShardStatus &S : R.shardStatus())
        E.label("shard", S.Name).sample(S.Failures);
      E.counter("lcm_router_retries_total",
                "Failed forward attempts that were retried.")
          .sample(R.counters().Retries);
      E.counter("lcm_router_failovers_total",
                "Requests answered by a non-first-choice shard.")
          .sample(R.counters().Failovers);
      E.counter("lcm_router_cache_hits_total",
                "Requests answered from the router response cache.")
          .sample(R.counters().CacheHits);
      E.counter("lcm_router_cache_misses_total",
                "Cacheable requests that were forwarded to a shard.")
          .sample(R.counters().CacheMisses);
      writeStatsCounters(E);
      return E.text();
    };
    if (!Metrics.start(MetricsPort, Render, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  }

  if (R.tcpPort() >= 0)
    std::printf("listening tcp=127.0.0.1:%d\n", R.tcpPort());
  if (!Opts.UnixPath.empty())
    std::printf("listening unix=%s\n", Opts.UnixPath.c_str());
  if (Metrics.port() >= 0)
    std::printf("metrics tcp=127.0.0.1:%d\n", Metrics.port());
  std::printf("shards=%zu vnodes=%u workers=%u\n", Opts.Shards.size(),
              Opts.VirtualNodes, Opts.Workers);
  std::fflush(stdout);

  char Byte;
  while (::read(SignalPipe[0], &Byte, 1) < 0 && errno == EINTR)
    ;

  std::fprintf(stderr, "lcm_router: draining...\n");
  R.shutdown();
  Metrics.shutdown();
  Router::Counters C = R.counters();
  std::fprintf(stderr,
               "lcm_router: done. forwarded=%llu retries=%llu "
               "failovers=%llu unavailable=%llu cache_hits=%llu "
               "cache_misses=%llu\n",
               (unsigned long long)C.Forwarded,
               (unsigned long long)C.Retries,
               (unsigned long long)C.Failovers,
               (unsigned long long)C.Unavailable,
               (unsigned long long)C.CacheHits,
               (unsigned long long)C.CacheMisses);
  return 0;
}
