//===- tools/lcm_serve.cpp - The optimization service daemon --------------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Runs the optimization service (src/server) as a long-lived daemon:
//
//   lcm_serve --tcp=0 --workers=4
//   lcm_serve --unix=/tmp/lcm.sock --queue=128
//
// Listens on loopback TCP (--tcp=0 binds an ephemeral port and prints it)
// and/or a Unix-domain socket, then serves length-prefixed JSON request
// frames until SIGTERM/SIGINT, at which point it drains gracefully: stop
// accepting, answer `shutting_down` to new frames, finish every admitted
// request, then exit.  Protocol and operations notes: docs/SERVER.md.
//
//===----------------------------------------------------------------------===//

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <unistd.h>

#include "cache/ResultCache.h"
#include "server/Metrics.h"
#include "server/Server.h"
#include "support/SimdWords.h"
#include "support/Stats.h"

using namespace lcm;
using namespace lcm::server;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: lcm_serve [--tcp=PORT] [--unix=PATH] [--workers=N]\n"
      "                 [--validators=N] [--queue=N] [--max-deadline-ms=N]\n"
      "                 [--default-deadline-ms=N] [--check-runs=N]\n"
      "                 [--max-source-bytes=N] [--max-blocks=N]\n"
      "                 [--max-instrs=N] [--enable-test-options]\n"
      "                 [--cache-bytes=N] [--cache-dir=PATH] [--no-cache]\n"
      "                 [--metrics-port=PORT]\n"
      "\n"
      "  --tcp=PORT             listen on 127.0.0.1:PORT (0 = ephemeral;\n"
      "                         the bound port is printed on startup)\n"
      "  --unix=PATH            listen on a Unix-domain socket at PATH\n"
      "  --workers=N            worker threads (0 = all hardware threads)\n"
      "  --validators=N         dedicated threads running `validate: true`\n"
      "                         equivalence checks off the worker pool\n"
      "                         (0 = validate inline on the workers)\n"
      "  --queue=N              bounded request queue capacity\n"
      "  --max-deadline-ms=N    clamp per-request deadlines (0 = no clamp)\n"
      "  --default-deadline-ms=N  deadline for requests that carry none\n"
      "  --check-runs=N         seeded executions per `check: true` request\n"
      "  --max-source-bytes=N   per-request IR source cap\n"
      "  --max-blocks=N         per-request basic-block cap\n"
      "  --max-instrs=N         per-request instruction cap\n"
      "  --enable-test-options  honor the test-only `test_sleep_ms` option\n"
      "  --cache-bytes=N        in-memory result cache budget in bytes\n"
      "                         (default 64 MiB)\n"
      "  --retain-bytes=N       retained-IR tier budget for protocol-v4\n"
      "                         delta requests (0 disables delta serving;\n"
      "                         default 32 MiB, needs the result cache)\n"
      "  --cache-dir=PATH       spill cached results to PATH so they\n"
      "                         survive restarts (docs/CACHE.md)\n"
      "  --no-cache             disable the result cache entirely\n"
      "  --metrics-port=PORT    Prometheus /metrics on 127.0.0.1:PORT\n"
      "                         (0 = ephemeral; the bound port is printed)\n"
      "\n"
      "SIGTERM/SIGINT trigger a graceful drain: accepted requests are\n"
      "answered, new frames get a `shutting_down` response, then the\n"
      "daemon exits 0.\n");
  return 2;
}

bool parseNum(const char *Arg, const char *Prefix, long long &Out) {
  size_t N = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, N) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtoll(Arg + N, &End, 10);
  return End && *End == '\0' && Arg[N] != '\0';
}

// Self-pipe: the signal handler may only write(); the main thread blocks
// reading the other end until a shutdown signal arrives.
int SignalPipe[2] = {-1, -1};

void onSignal(int) {
  char Byte = 1;
  ssize_t Ignored = ::write(SignalPipe[1], &Byte, 1);
  (void)Ignored;
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  cache::ResultCacheConfig CacheConfig;
  long long RetainBytes = 32ll << 20;
  bool NoCache = false;
  int MetricsPort = -1;
  long long N = 0;
  for (int I = 1; I != argc; ++I) {
    if (parseNum(argv[I], "--tcp=", N) && N >= 0 && N <= 65535) {
      Opts.TcpPort = int(N);
    } else if (std::strncmp(argv[I], "--unix=", 7) == 0 &&
               argv[I][7] != '\0') {
      Opts.UnixPath = argv[I] + 7;
    } else if (parseNum(argv[I], "--workers=", N) && N >= 0 && N <= 4096) {
      Opts.Workers = N == 0 ? std::thread::hardware_concurrency() : unsigned(N);
    } else if (parseNum(argv[I], "--validators=", N) && N >= 0 && N <= 4096) {
      Opts.Validators = unsigned(N);
    } else if (parseNum(argv[I], "--queue=", N) && N > 0 && N <= 1'000'000) {
      Opts.QueueCapacity = size_t(N);
    } else if (parseNum(argv[I], "--max-deadline-ms=", N) && N >= 0) {
      Opts.Service.MaxDeadlineMs = N;
    } else if (parseNum(argv[I], "--default-deadline-ms=", N) && N >= 0) {
      Opts.Service.DefaultDeadlineMs = N;
    } else if (parseNum(argv[I], "--check-runs=", N) && N > 0 && N <= 1000) {
      Opts.Service.CheckRuns = unsigned(N);
    } else if (parseNum(argv[I], "--max-source-bytes=", N) && N > 0) {
      Opts.Service.Limits.MaxSourceBytes = size_t(N);
    } else if (parseNum(argv[I], "--max-blocks=", N) && N > 0) {
      Opts.Service.Limits.MaxBlocks = size_t(N);
    } else if (parseNum(argv[I], "--max-instrs=", N) && N > 0) {
      Opts.Service.Limits.MaxInstrs = size_t(N);
    } else if (std::strcmp(argv[I], "--enable-test-options") == 0) {
      Opts.Service.EnableTestOptions = true;
    } else if (parseNum(argv[I], "--cache-bytes=", N) && N > 0) {
      CacheConfig.MemoryBytes = size_t(N);
    } else if (parseNum(argv[I], "--retain-bytes=", N) && N >= 0) {
      RetainBytes = N;
    } else if (std::strncmp(argv[I], "--cache-dir=", 12) == 0 &&
               argv[I][12] != '\0') {
      CacheConfig.DiskDir = argv[I] + 12;
    } else if (std::strcmp(argv[I], "--no-cache") == 0) {
      NoCache = true;
    } else if (parseNum(argv[I], "--metrics-port=", N) && N >= 0 &&
               N <= 65535) {
      MetricsPort = int(N);
    } else {
      return usage();
    }
  }
  if (Opts.TcpPort < 0 && Opts.UnixPath.empty())
    return usage();
  Opts.Service.ReportWorkers = Opts.Workers;

  if (!NoCache) {
    auto Cache = std::make_shared<cache::ResultCache>(CacheConfig);
    std::string Error;
    if (!Cache->open(Error)) {
      std::fprintf(stderr, "error: cache: %s\n", Error.c_str());
      return 1;
    }
    Opts.Service.Cache = std::move(Cache);
    // Delta serving needs both tiers: retained inputs to materialize the
    // base, cached results to answer its untouched functions.
    if (RetainBytes > 0)
      Opts.Service.Retained =
          std::make_shared<cache::RetainedIrCache>(size_t(RetainBytes));
  }

  if (::pipe(SignalPipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  Server S(Opts);
  std::string Error;
  if (!S.start(Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  MetricsServer Metrics;
  if (MetricsPort >= 0) {
    auto Render = [&S] {
      Exposition E;
      writeCommonMetrics(E, "shard", Stats::get("server.requests"),
                         S.queueDepth(), "server.response.");
      writeStatsCounters(E);
      return E.text();
    };
    if (!Metrics.start(MetricsPort, Render, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  }

  if (S.tcpPort() >= 0)
    std::printf("listening tcp=127.0.0.1:%d\n", S.tcpPort());
  if (!Opts.UnixPath.empty())
    std::printf("listening unix=%s\n", Opts.UnixPath.c_str());
  if (Metrics.port() >= 0)
    std::printf("metrics tcp=127.0.0.1:%d\n", Metrics.port());
  std::printf("kernels=%s workers=%u\n", simdwords::backendName(),
              Opts.Workers);
  std::fflush(stdout);

  // Park until a shutdown signal lands on the self-pipe.
  char Byte;
  while (::read(SignalPipe[0], &Byte, 1) < 0 && errno == EINTR)
    ;

  std::fprintf(stderr, "lcm_serve: draining...\n");
  S.shutdown();
  Metrics.shutdown();
  Server::Counters C = S.counters();
  std::fprintf(stderr,
               "lcm_serve: done. connections=%llu frames=%llu "
               "responses=%llu overloaded=%llu shed=%llu framing_errors=%llu\n",
               (unsigned long long)C.Connections,
               (unsigned long long)C.FramesIn,
               (unsigned long long)C.ResponsesOut,
               (unsigned long long)C.Overloaded,
               (unsigned long long)C.ShedShuttingDown,
               (unsigned long long)C.FramingErrors);
  if (Opts.Service.Cache)
    std::fprintf(stderr, "lcm_serve: cache %s\n",
                 Opts.Service.Cache->summary().c_str());
  return 0;
}
