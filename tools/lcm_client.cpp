//===- tools/lcm_client.cpp - One-shot client for lcm_serve ---------------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Sends one optimization request to a running lcm_serve and prints the
// optimized program:
//
//   lcm_client --tcp=PORT [options] [FILE]
//   lcm_client --unix=PATH [options] [FILE]
//
// Reads the IR from FILE (or stdin), frames it as an lcm-request-v1
// document, and blocks for the response.  See docs/SERVER.md for the
// protocol; `lcm_client --help` documents options and exit codes.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "interp/Interpreter.h"
#include "interp/Oracle.h"
#include "ir/Parser.h"
#include "metrics/Cost.h"
#include "server/Client.h"

using namespace lcm;
using namespace lcm::server;

namespace {

int usage(int Code) {
  std::fprintf(
      Code == 0 ? stdout : stderr,
      "usage: lcm_client (--tcp=PORT | --unix=PATH) [options] [FILE]\n"
      "\n"
      "  --pipeline=p1,p2,...  pass pipeline (default \"lcse,lcm\")\n"
      "  --deadline-ms=N       per-request deadline\n"
      "  --check               ask the server to verify semantic\n"
      "                        equivalence before returning\n"
      "  --report              include the lcm-run-report-v1 record and\n"
      "                        print it to stderr\n"
      "  --id=VALUE            request id echoed by the server\n"
      "  --raw                 print the whole response document instead\n"
      "                        of just the optimized IR\n"
      "  --closed-loop=N       optimize/run/re-optimize N rounds: each\n"
      "                        response's measured profile_out becomes the\n"
      "                        next request's profile (implies --check);\n"
      "                        fails if the profiled cost of the served\n"
      "                        program ever increases round over round\n"
      "\n"
      "exit codes:\n"
      "  0  success (response status \"ok\")\n"
      "  1  transport failure (cannot connect, connection dropped)\n"
      "  2  usage error\n"
      "  3  server answered with an error status (printed to stderr)\n"
      "  4  closed-loop cost regression\n");
  return Code;
}

std::string readAll(std::FILE *In) {
  std::string Data;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
    Data.append(Buf, N);
  return Data;
}

/// Profiled cost of the served program: total operation evaluations over
/// seeded executions, with inputs aligned to the original program's
/// variables by name (the server's validation idiom — reparsing renumbers
/// VarIds around PRE temporaries).  Seeds and oracles are fixed, so the
/// number is comparable across closed-loop rounds.
bool profiledCost(const Function &Original, const std::string &ServedIr,
                  uint64_t &Cost, std::string &Error) {
  ParseResult Served = parseFunction(ServedIr);
  if (!Served) {
    Error = "served IR failed to reparse: " + Served.Error;
    return false;
  }
  Cost = 0;
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    std::vector<int64_t> Inputs = makeSeededInputs(Seed, Original.numVars());
    std::vector<int64_t> ServedInputs(Served.Fn.numVars(), 0);
    for (VarId V = 0; V != VarId(Original.numVars()); ++V) {
      VarId W = Served.Fn.findVar(Original.varName(V));
      if (W != InvalidVar)
        ServedInputs[W] = Inputs[V];
    }
    RandomOracle Oracle(Seed ^ 0x94d049bb133111ebULL);
    Interpreter::Options Opts;
    Opts.MaxOriginalBlockVisits = 3000;
    Opts.OriginalBlockCount = uint32_t(Original.numBlocks());
    InterpResult R = Interpreter::run(Served.Fn, ServedInputs, Oracle, Opts);
    Cost += R.TotalEvals;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  int TcpPort = -1;
  std::string UnixPath;
  Request R;
  bool Raw = false;
  long long ClosedLoop = 0;
  const char *Path = nullptr;

  for (int I = 1; I != argc; ++I) {
    if (std::strncmp(argv[I], "--tcp=", 6) == 0) {
      char *End = nullptr;
      long long N = std::strtoll(argv[I] + 6, &End, 10);
      if (*End != '\0' || N < 0 || N > 65535)
        return usage(2);
      TcpPort = int(N);
    } else if (std::strncmp(argv[I], "--unix=", 7) == 0 &&
               argv[I][7] != '\0') {
      UnixPath = argv[I] + 7;
    } else if (std::strncmp(argv[I], "--pipeline=", 11) == 0) {
      R.Pipeline = argv[I] + 11;
    } else if (std::strncmp(argv[I], "--deadline-ms=", 14) == 0) {
      char *End = nullptr;
      long long N = std::strtoll(argv[I] + 14, &End, 10);
      if (*End != '\0' || N < 0)
        return usage(2);
      R.DeadlineMs = N;
    } else if (std::strncmp(argv[I], "--id=", 5) == 0) {
      R.Id = json::Value::str(argv[I] + 5);
    } else if (std::strncmp(argv[I], "--closed-loop=", 14) == 0) {
      char *End = nullptr;
      ClosedLoop = std::strtoll(argv[I] + 14, &End, 10);
      if (*End != '\0' || ClosedLoop < 1)
        return usage(2);
    } else if (std::strcmp(argv[I], "--check") == 0) {
      R.Check = true;
    } else if (std::strcmp(argv[I], "--report") == 0) {
      R.WantReport = true;
    } else if (std::strcmp(argv[I], "--raw") == 0) {
      Raw = true;
    } else if (std::strcmp(argv[I], "--help") == 0) {
      return usage(0);
    } else if (argv[I][0] == '-' && argv[I][1] != '\0') {
      return usage(2);
    } else if (Path) {
      return usage(2);
    } else {
      Path = argv[I];
    }
  }
  if ((TcpPort < 0) == UnixPath.empty())
    return usage(2); // Exactly one transport.

  if (Path && std::strcmp(Path, "-") != 0) {
    std::FILE *In = std::fopen(Path, "rb");
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path);
      return 1;
    }
    R.Ir = readAll(In);
    std::fclose(In);
  } else {
    R.Ir = readAll(stdin);
  }

  Client C;
  std::string Error;
  bool Connected = TcpPort >= 0 ? C.connectTcp(TcpPort, Error)
                                : C.connectUnix(UnixPath, Error);
  if (!Connected) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  if (ClosedLoop > 0) {
    // Optimize -> run -> re-optimize: each round's measured profile_out
    // (edge counts gathered while the server's check re-executed the
    // program) drives the next round's request, closing the profile loop
    // without client-side instrumentation.  The profiled cost of what the
    // server returns must never increase — a better profile can only
    // sharpen placement.
    ParseResult Orig = parseFunction(R.Ir);
    if (!Orig) {
      std::fprintf(stderr, "error: input IR: %s\n", Orig.Error.c_str());
      return 3;
    }
    R.Check = true; // profile_out is measured during the check runs
    json::Value Profile;
    std::string LastIr;
    uint64_t PrevCost = 0;
    bool HavePrev = false;
    for (long long Round = 0; Round != ClosedLoop; ++Round) {
      Request Req = R;
      Req.Id = json::Value::number(int64_t(Round));
      if (!Profile.isNull()) {
        Req.Profile = Profile;
        Req.ProfileMode = "measured";
      }
      json::Value Response;
      if (!C.call(Req, Response, Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      const json::Value *St = Response.find("status");
      std::string Status =
          St && St->isString() ? St->asString() : "(missing)";
      if (Status != "ok") {
        const json::Value *Msg = Response.find("error");
        std::fprintf(stderr, "error: round %lld: %s: %s\n", Round,
                     Status.c_str(),
                     Msg && Msg->isString() ? Msg->asString().c_str() : "");
        return 3;
      }
      const json::Value *Ir = Response.find("ir");
      if (!Ir || !Ir->isString()) {
        std::fprintf(stderr, "error: response carries no IR\n");
        return 1;
      }
      uint64_t Cost = 0;
      if (!profiledCost(Orig.Fn, Ir->asString(), Cost, Error)) {
        std::fprintf(stderr, "error: round %lld: %s\n", Round,
                     Error.c_str());
        return 3;
      }
      std::fprintf(stderr, "closed-loop round %lld: profiled cost %llu%s\n",
                   Round, (unsigned long long)Cost,
                   Profile.isNull() ? " (unprofiled)" : "");
      if (HavePrev && Cost > PrevCost) {
        std::fprintf(stderr,
                     "error: closed-loop cost increased: %llu -> %llu\n",
                     (unsigned long long)PrevCost, (unsigned long long)Cost);
        return 4;
      }
      PrevCost = Cost;
      HavePrev = true;
      LastIr = Ir->asString();
      if (const json::Value *PO = Response.find("profile_out"))
        Profile = *PO;
    }
    std::fputs(LastIr.c_str(), stdout);
    return 0;
  }

  json::Value Response;
  if (!C.call(R, Response, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  const json::Value *St = Response.find("status");
  std::string Status = St && St->isString() ? St->asString() : "(missing)";
  if (Status != "ok") {
    const json::Value *Msg = Response.find("error");
    std::fprintf(stderr, "error: %s: %s\n", Status.c_str(),
                 Msg && Msg->isString() ? Msg->asString().c_str() : "");
    if (Raw)
      std::printf("%s\n", Response.dump().c_str());
    return 3;
  }

  if (Raw) {
    std::printf("%s\n", Response.dump().c_str());
    return 0;
  }
  if (R.WantReport) {
    if (const json::Value *Report = Response.find("report"))
      std::fprintf(stderr, "%s\n", Report->dump().c_str());
  }
  const json::Value *Ir = Response.find("ir");
  if (!Ir || !Ir->isString()) {
    std::fprintf(stderr, "error: response carries no IR\n");
    return 1;
  }
  std::fputs(Ir->asString().c_str(), stdout);
  return 0;
}
