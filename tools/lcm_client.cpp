//===- tools/lcm_client.cpp - One-shot client for lcm_serve ---------------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Sends one optimization request to a running lcm_serve and prints the
// optimized program:
//
//   lcm_client --tcp=PORT [options] [FILE]
//   lcm_client --unix=PATH [options] [FILE]
//
// Reads the IR from FILE (or stdin), frames it as an lcm-request-v1
// document, and blocks for the response.  See docs/SERVER.md for the
// protocol; `lcm_client --help` documents options and exit codes.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/Client.h"

using namespace lcm;
using namespace lcm::server;

namespace {

int usage(int Code) {
  std::fprintf(
      Code == 0 ? stdout : stderr,
      "usage: lcm_client (--tcp=PORT | --unix=PATH) [options] [FILE]\n"
      "\n"
      "  --pipeline=p1,p2,...  pass pipeline (default \"lcse,lcm\")\n"
      "  --deadline-ms=N       per-request deadline\n"
      "  --check               ask the server to verify semantic\n"
      "                        equivalence before returning\n"
      "  --report              include the lcm-run-report-v1 record and\n"
      "                        print it to stderr\n"
      "  --id=VALUE            request id echoed by the server\n"
      "  --raw                 print the whole response document instead\n"
      "                        of just the optimized IR\n"
      "\n"
      "exit codes:\n"
      "  0  success (response status \"ok\")\n"
      "  1  transport failure (cannot connect, connection dropped)\n"
      "  2  usage error\n"
      "  3  server answered with an error status (printed to stderr)\n");
  return Code;
}

std::string readAll(std::FILE *In) {
  std::string Data;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
    Data.append(Buf, N);
  return Data;
}

} // namespace

int main(int argc, char **argv) {
  int TcpPort = -1;
  std::string UnixPath;
  Request R;
  bool Raw = false;
  const char *Path = nullptr;

  for (int I = 1; I != argc; ++I) {
    if (std::strncmp(argv[I], "--tcp=", 6) == 0) {
      char *End = nullptr;
      long long N = std::strtoll(argv[I] + 6, &End, 10);
      if (*End != '\0' || N < 0 || N > 65535)
        return usage(2);
      TcpPort = int(N);
    } else if (std::strncmp(argv[I], "--unix=", 7) == 0 &&
               argv[I][7] != '\0') {
      UnixPath = argv[I] + 7;
    } else if (std::strncmp(argv[I], "--pipeline=", 11) == 0) {
      R.Pipeline = argv[I] + 11;
    } else if (std::strncmp(argv[I], "--deadline-ms=", 14) == 0) {
      char *End = nullptr;
      long long N = std::strtoll(argv[I] + 14, &End, 10);
      if (*End != '\0' || N < 0)
        return usage(2);
      R.DeadlineMs = N;
    } else if (std::strncmp(argv[I], "--id=", 5) == 0) {
      R.Id = json::Value::str(argv[I] + 5);
    } else if (std::strcmp(argv[I], "--check") == 0) {
      R.Check = true;
    } else if (std::strcmp(argv[I], "--report") == 0) {
      R.WantReport = true;
    } else if (std::strcmp(argv[I], "--raw") == 0) {
      Raw = true;
    } else if (std::strcmp(argv[I], "--help") == 0) {
      return usage(0);
    } else if (argv[I][0] == '-' && argv[I][1] != '\0') {
      return usage(2);
    } else if (Path) {
      return usage(2);
    } else {
      Path = argv[I];
    }
  }
  if ((TcpPort < 0) == UnixPath.empty())
    return usage(2); // Exactly one transport.

  if (Path && std::strcmp(Path, "-") != 0) {
    std::FILE *In = std::fopen(Path, "rb");
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path);
      return 1;
    }
    R.Ir = readAll(In);
    std::fclose(In);
  } else {
    R.Ir = readAll(stdin);
  }

  Client C;
  std::string Error;
  bool Connected = TcpPort >= 0 ? C.connectTcp(TcpPort, Error)
                                : C.connectUnix(UnixPath, Error);
  if (!Connected) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  json::Value Response;
  if (!C.call(R, Response, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  const json::Value *St = Response.find("status");
  std::string Status = St && St->isString() ? St->asString() : "(missing)";
  if (Status != "ok") {
    const json::Value *Msg = Response.find("error");
    std::fprintf(stderr, "error: %s: %s\n", Status.c_str(),
                 Msg && Msg->isString() ? Msg->asString().c_str() : "");
    if (Raw)
      std::printf("%s\n", Response.dump().c_str());
    return 3;
  }

  if (Raw) {
    std::printf("%s\n", Response.dump().c_str());
    return 0;
  }
  if (R.WantReport) {
    if (const json::Value *Report = Response.find("report"))
      std::fprintf(stderr, "%s\n", Report->dump().c_str());
  }
  const json::Value *Ir = Response.find("ir");
  if (!Ir || !Ir->isString()) {
    std::fprintf(stderr, "error: response carries no IR\n");
    return 1;
  }
  std::fputs(Ir->asString().c_str(), stdout);
  return 0;
}
