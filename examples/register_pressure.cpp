//===- examples/register_pressure.cpp - Busy vs lazy temp lifetimes ------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Lifetime optimality made visible: runs Busy Code Motion and Lazy Code
// Motion on the paper's motivating example and prints, block by block,
// where each strategy's temporary is live.  Both remove the same
// computations (T1); only the lazy placement keeps the temp's live range
// minimal (T2).
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "analysis/VarLiveness.h"
#include "core/Lcm.h"
#include "ir/Printer.h"
#include "metrics/Cost.h"
#include "workload/PaperExamples.h"

using namespace lcm;

namespace {

void showLifetimes(const char *Name, PreStrategy S) {
  Function Fn = makeMotivatingExample();
  size_t OrigVars = Fn.numVars();
  runPre(Fn, S);

  VarLivenessResult Live = computeVarLiveness(Fn);
  std::printf("-- %s --\n", Name);
  std::printf("  %-10s %-8s %-8s\n", "block", "temp-in", "temp-out");
  for (const BasicBlock &B : Fn.blocks()) {
    bool In = false, Out = false;
    for (size_t V = OrigVars; V != Fn.numVars(); ++V) {
      In |= Live.LiveIn[B.id()].test(V);
      Out |= Live.LiveOut[B.id()].test(V);
    }
    std::printf("  %-10s %-8s %-8s\n", B.label().c_str(), In ? "live" : ".",
                Out ? "live" : ".");
  }
  LifetimeStats Stats = measureTempLifetimes(Fn, OrigVars);
  std::printf("  => %llu live block-boundary slots, peak pressure %llu\n\n",
              (unsigned long long)Stats.LiveBlockSlots,
              (unsigned long long)Stats.MaxPressure);
}

} // namespace

int main() {
  Function Fn = makeMotivatingExample();
  std::printf("== program ==\n%s\n", printFunction(Fn).c_str());
  showLifetimes("BCM: as early as possible", PreStrategy::Busy);
  showLifetimes("LCM: as late as possible", PreStrategy::Lazy);
  std::printf("Both eliminate the same evaluations; the lazy placement\n"
              "shrinks the temporary's live range (the paper's second\n"
              "optimality theorem).\n");
  return 0;
}
