//===- examples/loop_invariant.cpp - LCM subsumes loop-invariant motion --===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// The paper's introduction motivates PRE as the optimization subsuming
// loop-invariant code motion — but with a safety guarantee classic LICM
// lacks.  This example builds a nested loop, then contrasts:
//
//   - LCM: moves `a * b` exactly to the entry of the region that uses it
//     (never executed when the loop does not run);
//   - speculative LICM: hoists it to the preheader unconditionally;
//   - safe LICM: refuses (the expression is not anticipated above the
//     loop guard), demonstrating why down-safety needs edge placement.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "baseline/Licm.h"
#include "core/Lcm.h"
#include "ir/Printer.h"
#include "metrics/Compare.h"
#include "workload/PaperExamples.h"

using namespace lcm;

int main() {
  Function Original = makeLoopNestExample();
  std::printf("== nested-loop program ==\n%s\n",
              printFunction(Original).c_str());

  // Lazy code motion.
  Function AfterLcm = Original;
  PreRunResult R = runPre(AfterLcm, PreStrategy::Lazy);
  std::printf("== after LCM (deleted %llu, saved %llu, inserted %llu) ==\n%s\n",
              (unsigned long long)R.Placement.numDeletions(),
              (unsigned long long)R.Placement.numSaves(),
              (unsigned long long)R.Placement.numEdgeInsertions(),
              printFunction(AfterLcm).c_str());

  // LICM, both safety policies.
  Function AfterSpec = Original;
  LicmReport Spec = runLicm(AfterSpec, LicmMode::Speculative);
  Function AfterSafe = Original;
  LicmReport Safe = runLicm(AfterSafe, LicmMode::SafeOnly);
  std::printf("speculative LICM hoisted %llu expression(s); "
              "safe LICM hoisted %llu\n\n",
              (unsigned long long)Spec.HoistedExprs,
              (unsigned long long)Safe.HoistedExprs);

  // Quantify: dynamic evaluations over aligned seeded runs.
  std::printf("dynamic expression evaluations (5 seeded runs):\n");
  for (auto &[Name, Transform] :
       std::vector<std::pair<std::string, TransformFn>>{
           {"original", [](Function &) {}},
           {"LCM", [](Function &F) { runPre(F, PreStrategy::Lazy); }},
           {"LICM-speculative",
            [](Function &F) { runLicm(F, LicmMode::Speculative); }},
           {"LICM-safe",
            [](Function &F) { runLicm(F, LicmMode::SafeOnly); }}}) {
    StrategyOutcome O = evaluateStrategy(Name, Original, Transform);
    std::printf("  %-18s %llu\n", O.Strategy.c_str(),
                (unsigned long long)O.DynamicEvals);
  }
  std::printf("\nLCM gets the loop-invariant win without ever executing a\n"
              "computation the original program would not have executed.\n");
  return 0;
}
