//===- examples/quickstart.cpp - Smallest end-to-end use of the library --===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Parses a tiny program with a partial redundancy, runs Lazy Code Motion,
// and prints the program before and after together with the placement the
// analysis chose.  Start here.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "core/Lcm.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

using namespace lcm;

int main() {
  // y = a + b in block j is redundant when control arrives via block l,
  // but not via block r: a *partial* redundancy.  LCM inserts the
  // computation at the end of r and deletes the one in j.
  static const char *Source = R"(
func quickstart
block entry
  goto c
block c
  if p then l else r
block l
  x = a + b
  goto j
block r
  t = c0
  goto j
block j
  y = a + b
  goto done
block done
  exit
)";

  ParseResult Parsed = parseFunction(Source);
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  Function Fn = std::move(Parsed.Fn);
  if (!isValidFunction(Fn)) {
    std::fprintf(stderr, "invalid input function\n");
    return 1;
  }

  std::printf("== before ==\n%s\n", printFunction(Fn).c_str());

  PreRunResult R = runPre(Fn, PreStrategy::Lazy);

  std::printf("== placement ==\n");
  std::printf("edge insertions: %llu\n",
              (unsigned long long)R.Placement.numEdgeInsertions());
  std::printf("deletions:       %llu\n",
              (unsigned long long)R.Placement.numDeletions());
  std::printf("saves:           %llu\n",
              (unsigned long long)R.Placement.numSaves());

  std::printf("\n== after ==\n%s", printFunction(Fn).c_str());

  if (!isValidFunction(Fn)) {
    std::fprintf(stderr, "transformed function is invalid!\n");
    return 1;
  }
  return 0;
}
