//===- examples/address_kernel.cpp - Full pipeline on array addressing ---===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// The workload PRE was invented for: array address arithmetic inside loop
// nests.  This example generates a deterministic 2-deep kernel full of
// `base + i*stride` computations, then runs the complete optimization
// pipeline (constfold -> lcse -> sr -> lcm -> cleanup) and reports how
// the dynamic operation mix changes at every stage.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "workload/AddressGen.h"

using namespace lcm;

namespace {

struct Mix {
  uint64_t Muls = 0;
  uint64_t Other = 0;
  uint64_t Instrs = 0;
};

Mix measure(const Function &Fn) {
  FirstSuccessorOracle Oracle;
  Interpreter::Options Opts;
  std::vector<int64_t> Inputs(Fn.numVars());
  for (size_t I = 0; I != Inputs.size(); ++I)
    Inputs[I] = int64_t(1000 * I);
  InterpResult R = Interpreter::run(Fn, Inputs, Oracle, Opts);
  Mix M;
  M.Instrs = R.InstrsExecuted;
  for (ExprId E = 0; E != Fn.exprs().size(); ++E) {
    if (Fn.exprs().expr(E).Op == Opcode::Mul)
      M.Muls += R.EvalsPerExpr[E];
    else
      M.Other += R.EvalsPerExpr[E];
  }
  return M;
}

} // namespace

int main() {
  AddressGenOptions Opts;
  Opts.Seed = 5;
  Opts.Depth = 2;
  Opts.TripCount = 8;
  Opts.StmtsPerBody = 5;
  Function Fn = generateAddressKernel(Opts);
  std::printf("== address kernel (2-deep nest, trip 8) ==\n%s\n",
              printFunction(Fn).c_str());

  Mix Before = measure(Fn);
  std::printf("%-28s muls=%-6llu other-ops=%-6llu instrs=%llu\n",
              "original:", (unsigned long long)Before.Muls,
              (unsigned long long)Before.Other,
              (unsigned long long)Before.Instrs);

  const char *Stages[] = {"constfold", "lcse", "sr", "copyprop",
                          "lcm", "cleanup"};
  for (const char *Stage : Stages) {
    PipelineParse P = parsePipeline(Stage);
    if (!P) {
      std::fprintf(stderr, "error: %s\n", P.Error.c_str());
      return 1;
    }
    Pipeline::RunResult R = P.P.run(Fn);
    if (!R.Ok) {
      std::fprintf(stderr, "error: %s\n", R.Error.c_str());
      return 1;
    }
    Mix M = measure(Fn);
    std::printf("after %-22s muls=%-6llu other-ops=%-6llu instrs=%llu "
                "(%llu changes)\n",
                (std::string(Stage) + ":").c_str(),
                (unsigned long long)M.Muls, (unsigned long long)M.Other,
                (unsigned long long)M.Instrs,
                (unsigned long long)R.Steps[0].Changes);
  }

  std::printf("\nThe multiplications disappear into induction updates (sr),\n"
              "the repeated address computations into temps (lcm), and the\n"
              "copy overhead into nothing (cleanup).\n");
  return 0;
}
