//===- examples/optimize_tool.cpp - Command-line PRE driver ---------------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// A small driver exposing the whole library on textual IR:
//
//   optimize_tool [--pipeline=p1,p2,...] [--dot] [--stats] [FILE]
//
// Reads the program from FILE (or stdin), applies the requested pass
// pipeline (default "lcse,lcm", the paper's prescription), and prints the
// optimized program (or its Graphviz rendering with --dot).  Run with
// --list-passes to see every registered pass.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <string>

#include "driver/Pipeline.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

using namespace lcm;

namespace {

std::string readAll(std::FILE *In) {
  std::string Data;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
    Data.append(Buf, N);
  return Data;
}

int usage() {
  std::fprintf(stderr, "usage: optimize_tool [--pipeline=p1,p2,...] "
                       "[--pass=NAME] [--dot] [--stats] [--list-passes] "
                       "[FILE]\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string Spec = "lcse,lcm";
  bool Dot = false, ShowStats = false;
  const char *Path = nullptr;

  for (int I = 1; I != argc; ++I) {
    if (std::strncmp(argv[I], "--pipeline=", 11) == 0) {
      Spec = argv[I] + 11;
    } else if (std::strncmp(argv[I], "--pass=", 7) == 0) {
      Spec = argv[I] + 7;
    } else if (std::strcmp(argv[I], "--list-passes") == 0) {
      for (const std::string &Name : standardPassNames())
        std::printf("%s\n", Name.c_str());
      return 0;
    } else if (std::strcmp(argv[I], "--dot") == 0) {
      Dot = true;
    } else if (std::strcmp(argv[I], "--stats") == 0) {
      ShowStats = true;
    } else if (argv[I][0] == '-') {
      return usage();
    } else if (Path) {
      return usage();
    } else {
      Path = argv[I];
    }
  }

  std::string Source;
  if (Path) {
    std::FILE *In = std::fopen(Path, "rb");
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path);
      return 1;
    }
    Source = readAll(In);
    std::fclose(In);
  } else {
    Source = readAll(stdin);
  }

  ParseResult Parsed = parseFunction(Source);
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  Function Fn = std::move(Parsed.Fn);
  auto Errors = verifyFunction(Fn);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "invalid function: %s\n", E.c_str());
    return 1;
  }

  PipelineParse Parsed2 = parsePipeline(Spec);
  if (!Parsed2) {
    std::fprintf(stderr, "error: %s\n", Parsed2.Error.c_str());
    return usage();
  }
  Pipeline::RunResult Run = Parsed2.P.run(Fn);
  if (!Run.Ok) {
    std::fprintf(stderr, "internal error: %s\n", Run.Error.c_str());
    return 1;
  }

  if (ShowStats)
    for (const Pipeline::StepResult &S : Run.Steps)
      std::fprintf(stderr, "pass=%s changes=%llu\n", S.Name.c_str(),
                   (unsigned long long)S.Changes);

  std::fputs((Dot ? printDot(Fn) : printFunction(Fn)).c_str(), stdout);
  return 0;
}
