//===- examples/optimize_tool.cpp - Command-line PRE driver ---------------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// A small driver exposing the whole library on textual IR:
//
//   optimize_tool [--pipeline=p1,p2,...] [--dot] [--stats]
//                 [--timeout-ms=N] [--report=out.json]
//                 [--strategy=classic|speculative] [--profile=FILE] [FILE]
//
// Reads the program from FILE (or stdin), applies the requested pass
// pipeline (default "lcse,lcm", the paper's prescription), and prints the
// optimized program (or its Graphviz rendering with --dot).  Run with
// --list-passes to see every registered pass.
//
// --strategy=speculative swaps every `lcm` step for `specpre`, the
// profile-guided min-cut placement backend (docs/SPECPRE.md); pair it
// with --profile=FILE, an lcm-profile-v1 edge-profile document, or the
// run degenerates to classic LCM by specpre's fallback rule.
// --strategy=gvn swaps every `lcm` step for `gvn,lcm`: global value
// numbering first folds algebraically equal expressions into one lexical
// shape (docs/GVN.md), then classic LCM places the survivors.
//
// --emit-profile=FILE measures the *input* program: it interprets the
// original under seeded inputs and oracles (the property-test execution
// idiom), aggregates the per-edge traversal counts across seeds, and
// writes an lcm-profile-v1 document usable directly as --profile on a
// later run or as the `profile` field of a server request.
//
// --report=out.json writes the structured run report (schema
// "lcm-run-report-v1", see docs/OBSERVABILITY.md): per-pass wall time and
// word-op counts, solver iteration counters, insertion/replacement/save
// counts, and before/after function metrics including temp lifetimes.
// Setting LCM_TRACE=1 (or =<path>) additionally emits per-stage begin/end
// trace events.
//
// Batch mode exercises the parallel corpus driver instead of a file:
//
//   optimize_tool --corpus=N [--threads=M] [--pipeline=...]
//                 [--report=out.json] [--cache-bytes=N] [--cache-dir=PATH]
//
// generates N functions (half structured, half random CFGs), optimizes
// them on M worker threads (0 = all hardware threads), and prints a
// throughput summary (--report captures it plus the batch's counters).
// --cache-bytes / --cache-dir route the batch through the content-addressed
// result cache (docs/CACHE.md): repeat functions — and, with --cache-dir,
// repeat *runs* — skip the pipeline.
//
//===----------------------------------------------------------------------===//

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cache/ResultCache.h"
#include "driver/CorpusDriver.h"
#include "driver/Pipeline.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "metrics/Cost.h"
#include "metrics/RunReport.h"
#include "specpre/EdgeProfile.h"
#include "support/Cancel.h"
#include "support/Stats.h"
#include "workload/Corpus.h"

using namespace lcm;

namespace {

std::string readAll(std::FILE *In) {
  std::string Data;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
    Data.append(Buf, N);
  return Data;
}

int usage() {
  std::fprintf(stderr, "usage: optimize_tool [--pipeline=p1,p2,...] "
                       "[--pass=NAME] [--dot] [--stats] [--list-passes] "
                       "[--timeout-ms=N] [--report=FILE.json]\n"
                       "                     "
                       "[--strategy=classic|speculative|gvn] "
                       "[--profile=FILE.json] [--emit-profile=FILE.json] "
                       "[FILE]\n"
                       "       optimize_tool --corpus=N [--threads=M] "
                       "[--pipeline=p1,p2,...] [--report=FILE.json] "
                       "[--cache-bytes=N] [--cache-dir=PATH]\n"
                       "\n"
                       "  --timeout-ms=N  cancel the pipeline cooperatively "
                       "after N milliseconds\n"
                       "  --strategy=speculative  run `specpre` instead of "
                       "`lcm` (profile-guided min-cut\n"
                       "                  placement, docs/SPECPRE.md)\n"
                       "  --strategy=gvn  run `gvn,lcm` instead of `lcm` "
                       "(value-numbered placement,\n"
                       "                  docs/GVN.md)\n"
                       "  --profile=FILE  lcm-profile-v1 edge profile driving "
                       "the speculative placement\n"
                       "  --emit-profile=FILE  measure the input program "
                       "under seeded runs and write\n"
                       "                  the lcm-profile-v1 edge counts to "
                       "FILE\n"
                       "  --cache-bytes=N  corpus mode: result-cache memory "
                       "budget (enables the cache)\n"
                       "  --cache-dir=PATH corpus mode: persistent result "
                       "cache at PATH (enables the cache)\n"
                       "\n"
                       "exit codes:\n"
                       "  0  success\n"
                       "  1  parse/verify/pipeline failure or I/O error\n"
                       "  2  usage error\n"
                       "  4  timed out (--timeout-ms deadline exceeded)\n");
  return 2;
}

int writeReportOrFail(const RunReport &Report, const std::string &Path) {
  if (Report.writeFile(Path))
    return 0;
  std::fprintf(stderr, "error: cannot write report to %s\n", Path.c_str());
  return 1;
}

int runCorpusMode(const std::string &Spec, unsigned CorpusSize,
                  unsigned Threads, const std::string &ReportPath,
                  size_t CacheBytes, const std::string &CacheDir) {
  PipelineParse Parsed = parsePipeline(Spec);
  if (!Parsed) {
    std::fprintf(stderr, "error: %s\n", Parsed.Error.c_str());
    return usage();
  }
  std::vector<Function> Fns;
  for (const CorpusEntry &E :
       makeGeneratedCorpus(CorpusSize / 2, CorpusSize - CorpusSize / 2))
    Fns.push_back(E.Make());

  std::unique_ptr<cache::ResultCache> Cache;
  if (CacheBytes != 0 || !CacheDir.empty()) {
    cache::ResultCacheConfig CC;
    if (CacheBytes != 0)
      CC.MemoryBytes = CacheBytes;
    CC.DiskDir = CacheDir;
    Cache = std::make_unique<cache::ResultCache>(CC);
    std::string Error;
    if (!Cache->open(Error)) {
      std::fprintf(stderr, "error: cache: %s\n", Error.c_str());
      return 1;
    }
  }

  CorpusDriverOptions Opts;
  Opts.Threads = Threads;
  Opts.Cache = Cache.get();
  std::map<std::string, uint64_t> StatsBefore = Stats::all();
  CorpusDriverResult R = optimizeCorpus(Fns, Parsed.P, Opts);

  std::printf("corpus: %zu functions, pipeline \"%s\"\n", Fns.size(),
              Spec.c_str());
  std::printf("threads=%u  time=%.3fs  throughput=%.1f functions/s  "
              "changes=%llu  failures=%zu\n",
              R.ThreadsUsed, R.Seconds, R.functionsPerSecond(),
              (unsigned long long)R.TotalChanges, R.NumFailed);
  if (Cache)
    std::printf("cache: hits=%zu/%zu  %s\n", R.CacheHits, Fns.size(),
                Cache->summary().c_str());
  if (!ReportPath.empty()) {
    std::map<std::string, uint64_t> Delta;
    for (const auto &[Name, After] : Stats::all()) {
      auto It = StatsBefore.find(Name);
      uint64_t Prev = It == StatsBefore.end() ? 0 : It->second;
      if (After != Prev)
        Delta[Name] = After - Prev;
    }
    RunReport Report =
        makeCorpusReport(R, "optimize_tool", Spec, std::move(Delta));
    if (int Rc = writeReportOrFail(Report, ReportPath))
      return Rc;
  }
  if (R.NumFailed != 0) {
    for (size_t I = 0; I != R.PerFunction.size(); ++I)
      if (!R.PerFunction[I].Ok)
        std::fprintf(stderr, "function %zu: %s\n", I,
                     R.PerFunction[I].Error.c_str());
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string Spec = "lcse,lcm";
  std::string ReportPath;
  bool Dot = false, ShowStats = false;
  std::string Strategy = "classic";
  const char *Path = nullptr;
  unsigned CorpusSize = 0, Threads = 1;
  long long TimeoutMs = -1;
  size_t CacheBytes = 0;
  std::string CacheDir;
  std::string ProfilePath;
  std::string EmitProfilePath;

  for (int I = 1; I != argc; ++I) {
    if (std::strncmp(argv[I], "--pipeline=", 11) == 0) {
      Spec = argv[I] + 11;
    } else if (std::strncmp(argv[I], "--pass=", 7) == 0) {
      Spec = argv[I] + 7;
    } else if (std::strncmp(argv[I], "--strategy=", 11) == 0) {
      Strategy = argv[I] + 11;
      if (Strategy != "classic" && Strategy != "speculative" &&
          Strategy != "gvn")
        return usage();
    } else if (std::strncmp(argv[I], "--profile=", 10) == 0) {
      ProfilePath = argv[I] + 10;
      if (ProfilePath.empty())
        return usage();
    } else if (std::strncmp(argv[I], "--emit-profile=", 15) == 0) {
      EmitProfilePath = argv[I] + 15;
      if (EmitProfilePath.empty())
        return usage();
    } else if (std::strncmp(argv[I], "--report=", 9) == 0) {
      ReportPath = argv[I] + 9;
      if (ReportPath.empty())
        return usage();
    } else if (std::strncmp(argv[I], "--corpus=", 9) == 0) {
      char *End = nullptr;
      long long N = std::strtoll(argv[I] + 9, &End, 10);
      if (*End != '\0' || N <= 0 || N > 10'000'000)
        return usage();
      CorpusSize = unsigned(N);
    } else if (std::strncmp(argv[I], "--threads=", 10) == 0) {
      char *End = nullptr;
      long long N = std::strtoll(argv[I] + 10, &End, 10);
      if (*End != '\0' || N < 0 || N > 4096)
        return usage();
      Threads = unsigned(N);
    } else if (std::strncmp(argv[I], "--cache-bytes=", 14) == 0) {
      char *End = nullptr;
      long long N = std::strtoll(argv[I] + 14, &End, 10);
      if (*End != '\0' || N <= 0)
        return usage();
      CacheBytes = size_t(N);
    } else if (std::strncmp(argv[I], "--cache-dir=", 12) == 0) {
      CacheDir = argv[I] + 12;
      if (CacheDir.empty())
        return usage();
    } else if (std::strncmp(argv[I], "--timeout-ms=", 13) == 0) {
      char *End = nullptr;
      TimeoutMs = std::strtoll(argv[I] + 13, &End, 10);
      if (*End != '\0' || TimeoutMs < 0)
        return usage();
    } else if (std::strcmp(argv[I], "--list-passes") == 0) {
      for (const std::string &Name : standardPassNames())
        std::printf("%s\n", Name.c_str());
      return 0;
    } else if (std::strcmp(argv[I], "--dot") == 0) {
      Dot = true;
    } else if (std::strcmp(argv[I], "--stats") == 0) {
      ShowStats = true;
    } else if (argv[I][0] == '-') {
      return usage();
    } else if (Path) {
      return usage();
    } else {
      Path = argv[I];
    }
  }

  if (Strategy != "classic") {
    // Token-wise swap of the `lcm` steps, so the default pipeline and
    // custom ones alike pick up the requested placement backend:
    // speculative replaces lcm with specpre, gvn prepends value numbering
    // to each lcm step.
    std::string Rewritten, Tok;
    for (char C : Spec + ",") {
      if (C == ',') {
        if (!Tok.empty()) {
          if (!Rewritten.empty())
            Rewritten += ',';
          if (Tok != "lcm")
            Rewritten += Tok;
          else
            Rewritten += Strategy == "speculative" ? "specpre" : "gvn,lcm";
          Tok.clear();
        }
      } else if (!std::isspace(static_cast<unsigned char>(C))) {
        Tok += C;
      }
    }
    Spec = Rewritten;
  }

  // The scope stays active for the rest of main, covering both the
  // single-file and corpus paths (the corpus driver's workers inherit
  // nothing — profiles are per-program, so batch mode stays classic).
  specpre::EdgeProfile Profile;
  bool HasProfile = false;
  if (!ProfilePath.empty()) {
    json::ParseResult Doc = json::parseFile(ProfilePath);
    if (!Doc) {
      std::fprintf(stderr, "error: profile %s: %s\n", ProfilePath.c_str(),
                   Doc.Error.c_str());
      return 1;
    }
    specpre::ProfileParse PP = specpre::parseProfile(Doc.V);
    if (!PP) {
      std::fprintf(stderr, "error: profile %s: %s\n", ProfilePath.c_str(),
                   PP.Error.c_str());
      return 1;
    }
    Profile = std::move(PP.P);
    HasProfile = true;
  }
  specpre::ProfileContext::Scope ProfileScope(HasProfile ? &Profile
                                                          : nullptr);

  if (CorpusSize != 0)
    return runCorpusMode(Spec, CorpusSize, Threads, ReportPath, CacheBytes,
                         CacheDir);

  std::string Source;
  if (Path) {
    std::FILE *In = std::fopen(Path, "rb");
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path);
      return 1;
    }
    Source = readAll(In);
    std::fclose(In);
  } else {
    Source = readAll(stdin);
  }

  ParseResult Parsed = parseFunction(Source);
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  Function Fn = std::move(Parsed.Fn);
  auto Errors = verifyFunction(Fn);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "invalid function: %s\n", E.c_str());
    return 1;
  }

  PipelineParse Parsed2 = parsePipeline(Spec);
  if (!Parsed2) {
    std::fprintf(stderr, "error: %s\n", Parsed2.Error.c_str());
    return usage();
  }

  if (!EmitProfilePath.empty()) {
    // Measure the *original* program before any pass mutates it: the
    // property-test execution idiom (seeded inputs, seeded oracle) keeps
    // the runs deterministic, and the traversal counts of several seeds
    // sum into one lcm-profile-v1 document.
    constexpr uint64_t MeasureRuns = 3;
    specpre::EdgeProfile Measured;
    for (uint64_t Seed = 1; Seed <= MeasureRuns; ++Seed) {
      RandomOracle Oracle(Seed ^ 0x94d049bb133111ebULL);
      Interpreter::Options IOpts;
      IOpts.MaxOriginalBlockVisits = 3000;
      IOpts.OriginalBlockCount = uint32_t(Fn.numBlocks());
      InterpResult Run = Interpreter::run(
          Fn, makeSeededInputs(Seed, Fn.numVars()), Oracle, IOpts);
      specpre::accumulateTraversals(Fn, Run.SuccTraversals, Measured);
    }
    const std::string Text =
        specpre::profileToJson(Measured).dump(2) + "\n";
    std::FILE *Out = std::fopen(EmitProfilePath.c_str(), "wb");
    const bool Written =
        Out && std::fwrite(Text.data(), 1, Text.size(), Out) == Text.size();
    if (Out)
      std::fclose(Out);
    if (!Written) {
      std::fprintf(stderr, "error: cannot write profile to %s\n",
                   EmitProfilePath.c_str());
      return 1;
    }
  }

  CancelToken Deadline;
  if (TimeoutMs >= 0)
    Deadline.setTimeoutMs(TimeoutMs);
  const CancelToken *Cancel = TimeoutMs >= 0 ? &Deadline : nullptr;

  if (!ReportPath.empty()) {
    RunReport Report =
        collectRunReport(Parsed2.P, Fn, "optimize_tool", Spec, Cancel);
    if (Report.Cancelled) {
      std::fprintf(stderr, "timed out: %s\n", Report.Error.c_str());
      return 4;
    }
    if (!Report.Ok) {
      std::fprintf(stderr, "internal error: %s\n", Report.Error.c_str());
      return 1;
    }
    if (int Rc = writeReportOrFail(Report, ReportPath))
      return Rc;
    if (ShowStats)
      for (const PassRecord &P : Report.Passes)
        std::fprintf(stderr, "pass=%s changes=%llu seconds=%.6f\n",
                     P.Name.c_str(), (unsigned long long)P.Changes,
                     P.Seconds);
    std::fputs((Dot ? printDot(Fn) : printFunction(Fn)).c_str(), stdout);
    return 0;
  }

  Pipeline::RunResult Run = Parsed2.P.run(Fn, Cancel);
  if (Run.Cancelled) {
    std::fprintf(stderr, "timed out: %s\n", Run.Error.c_str());
    return 4;
  }
  if (!Run.Ok) {
    std::fprintf(stderr, "internal error: %s\n", Run.Error.c_str());
    return 1;
  }

  if (ShowStats)
    for (const Pipeline::StepResult &S : Run.Steps)
      std::fprintf(stderr, "pass=%s changes=%llu\n", S.Name.c_str(),
                   (unsigned long long)S.Changes);

  std::fputs((Dot ? printDot(Fn) : printFunction(Fn)).c_str(), stdout);
  return 0;
}
