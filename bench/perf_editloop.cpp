//===- bench/perf_editloop.cpp - Incremental vs full reoptimization -------===//
//
// The headline measurement of docs/INCREMENTAL.md: a developer edit loop
// over the whole-corpus module, comparing what a 1-block edit costs down
// the protocol-v4 delta path (retained base + per-function memoization:
// only the edited function re-optimizes) against a cacheless service that
// re-optimizes the entire module from text on every edit.  The harness
// (server/IncrementalBench.h) asserts both paths serve byte-identical
// modules, so the speedup is work avoided, never work skipped.
//
// The gate lives in BENCH_baseline.json: `delta_applied == edits`,
// `delta_full_equal`, and `delta_speedup_ge5x` are exact-checked by
// bench_gate, and the raw p50s ride under its tolerance-checked timing
// block.  This binary is the standalone/CI-artifact view of the same
// measurement.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "server/IncrementalBench.h"

using namespace lcm;

namespace {

void runEditLoopTable() {
  printHeading("editloop",
               "1-block edit: delta request vs full reoptimization");

  server::EditLoopBenchResult R = server::runEditLoopBench(/*Edits=*/40);

  Table T({"path", "p50 ms", "p90 ms", "edits"});
  auto Pct = [](std::vector<double> V, unsigned P) {
    std::sort(V.begin(), V.end());
    return V.empty() ? 0.0 : V[std::min(V.size() * P / 100, V.size() - 1)];
  };
  char P50[32], P90[32];
  std::snprintf(P50, sizeof(P50), "%.3f", R.deltaP50());
  std::snprintf(P90, sizeof(P90), "%.3f", Pct(R.DeltaMs, 90));
  T.row().add("delta").add(P50).add(P90).add(uint64_t(R.Edits));
  std::snprintf(P50, sizeof(P50), "%.3f", R.fullP50());
  std::snprintf(P90, sizeof(P90), "%.3f", Pct(R.FullMs, 90));
  T.row().add("full").add(P50).add(P90).add(uint64_t(R.Edits));
  printTable(T);

  std::printf("\nmodule: %u functions; delta applied %llu/%u, "
              "responses byte-identical: %s\n",
              R.Functions, (unsigned long long)R.DeltaApplied, R.Edits,
              R.DeltaFullEqual ? "yes" : "NO");
  std::printf("p50 speedup (full / delta): %.2fx\n", R.speedupP50());

  benchRecordMetric("functions", uint64_t(R.Functions));
  benchRecordMetric("edits", uint64_t(R.Edits));
  benchRecordMetric("delta_applied", R.DeltaApplied);
  benchRecordMetric("delta_fallbacks", R.DeltaFallbacks);
  benchRecordMetric("failures", R.Failures);
  benchRecordMetric("delta_full_equal", R.DeltaFullEqual);
  benchRecordMetric("delta_p50_ms", R.deltaP50());
  benchRecordMetric("full_p50_ms", R.fullP50());
  benchRecordMetric("speedup_p50", R.speedupP50());
  benchRecordMetric("delta_speedup_ge5x", R.speedupP50() >= 5.0);
}

void BM_EditLoop(benchmark::State &State) {
  for (auto _ : State) {
    server::EditLoopBenchResult R =
        server::runEditLoopBench(unsigned(State.range(0)));
    benchmark::DoNotOptimize(R.DeltaApplied);
  }
}
BENCHMARK(BM_EditLoop)->Arg(10)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "perf_editloop");
  runEditLoopTable();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
