//===- bench/fig1_motivating.cpp - Reproduces paper Figure 1 -------------===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Experiment F1 (see EXPERIMENTS.md): the paper's motivating example.
// Prints the example CFG, the placements chosen by BCM and LCM, and the
// transformed programs, then times the full LCM pipeline on the example.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "ir/Printer.h"
#include "workload/PaperExamples.h"

using namespace lcm;

namespace {

void printPlacement(const Function &Fn, const CfgEdges &Edges,
                    const PrePlacement &P, const char *Name) {
  std::printf("-- %s placement --\n", Name);
  if (!P.InsertEdge.empty()) {
    for (EdgeId E = 0; E != Edges.numEdges(); ++E) {
      if (P.InsertEdge[E].none())
        continue;
      const CfgEdge &Edge = Edges.edge(E);
      for (size_t Bit : P.InsertEdge[E])
        std::printf("  insert %-8s on edge %s -> %s\n",
                    Fn.exprText(ExprId(Bit)).c_str(),
                    Fn.block(Edge.From).label().c_str(),
                    Fn.block(Edge.To).label().c_str());
    }
  }
  for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
    for (size_t Bit : P.Delete[B])
      std::printf("  delete %-8s in block %s\n",
                  Fn.exprText(ExprId(Bit)).c_str(),
                  Fn.block(B).label().c_str());
    for (size_t Bit : P.Save[B])
      std::printf("  save   %-8s in block %s\n",
                  Fn.exprText(ExprId(Bit)).c_str(),
                  Fn.block(B).label().c_str());
  }
}

void reproduceFigure1() {
  Function Fn = makeMotivatingExample();
  std::printf("=== F1: the motivating example ===\n\n%s\n",
              printFunction(Fn).c_str());

  CfgEdges Edges(Fn);
  LocalProperties LP(Fn);
  LazyCodeMotion Engine(Fn, Edges, LP);

  PrePlacement Busy = Engine.placement(PreStrategy::Busy);
  PrePlacement Lazy = Engine.placement(PreStrategy::Lazy);
  printPlacement(Fn, Edges, Busy, "BCM (busy)");
  printPlacement(Fn, Edges, Lazy, "LCM (lazy)");

  StrategyOutcome None =
      evaluateStrategy("none", Fn, identityTransform());
  StrategyOutcome B = evaluateStrategy(
      "BCM", Fn, [](Function &F) { runPre(F, PreStrategy::Busy); });
  StrategyOutcome L = evaluateStrategy(
      "LCM", Fn, [](Function &F) { runPre(F, PreStrategy::Lazy); });

  std::printf("\n-- outcome --\n");
  std::printf("  %-5s staticOps=%llu dynEvals=%llu tempLiveSlots=%llu\n",
              None.Strategy.c_str(), (unsigned long long)None.StaticOps,
              (unsigned long long)None.DynamicEvals,
              (unsigned long long)None.TempLiveSlots);
  for (const StrategyOutcome &O : {B, L})
    std::printf("  %-5s staticOps=%llu dynEvals=%llu tempLiveSlots=%llu\n",
                O.Strategy.c_str(), (unsigned long long)O.StaticOps,
                (unsigned long long)O.DynamicEvals,
                (unsigned long long)O.TempLiveSlots);

  Function After = makeMotivatingExample();
  runPre(After, PreStrategy::Lazy);
  std::printf("\n-- program after LCM --\n%s\n", printFunction(After).c_str());
}

void BM_Figure1Pipeline(benchmark::State &State) {
  for (auto _ : State) {
    Function Fn = makeMotivatingExample();
    PreRunResult R = runPre(Fn, PreStrategy::Lazy);
    benchmark::DoNotOptimize(R.Placement.numDeletions());
  }
}
BENCHMARK(BM_Figure1Pipeline);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "fig1_motivating");
  reproduceFigure1();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
