//===- bench/perf_scaling.cpp - Pipeline throughput and scaling ----------===//
//
// Experiment T3 companion (see EXPERIMENTS.md): wall-clock scaling of the
// full LCM pipeline and of each analysis with CFG size, on both structured
// and arbitrary random graphs.  The bit-vector round-robin solvers should
// scale near-linearly in blocks for reducible (structured) graphs, with
// modest extra passes for irreducible random ones.  Also prints a pass-
// count scaling table.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/RandomCfg.h"
#include "workload/StructuredGen.h"

using namespace lcm;

namespace {

Function makeStructuredOfSize(unsigned Depth) {
  StructuredGenOptions Opts;
  Opts.Seed = 42;
  Opts.MaxDepth = Depth;
  Opts.MaxStmtsPerSeq = 5;
  Opts.NumVars = 8;
  Function Fn = generateStructured(Opts);
  runLocalCse(Fn);
  return Fn;
}

Function makeRandomOfSize(unsigned Blocks) {
  RandomCfgOptions Opts;
  Opts.Seed = 42;
  Opts.NumBlocks = Blocks;
  Opts.NumVars = 8;
  Function Fn = generateRandomCfg(Opts);
  runLocalCse(Fn);
  return Fn;
}

void printScalingTable() {
  printHeading("T3b", "solver pass counts vs CFG size");
  Table T({"graph", "blocks", "edges", "exprs", "avail passes",
           "ant passes", "later passes", "MR passes"});
  auto addRow = [&T](const char *Kind, Function Fn) {
    CfgEdges Edges(Fn);
    LocalProperties LP(Fn);
    LazyCodeMotion Engine(Fn, Edges, LP);
    (void)Engine.placement(PreStrategy::Lazy);
    MorelRenvoiseResult MR = computeMorelRenvoise(Fn, Edges);
    T.row()
        .add(Kind)
        .add(uint64_t(Fn.numBlocks()))
        .add(uint64_t(Edges.numEdges()))
        .add(uint64_t(Fn.exprs().size()))
        .add(Engine.availStats().Passes)
        .add(Engine.antStats().Passes)
        .add(Engine.laterStats().Passes)
        .add(MR.Stats.Passes);
  };
  for (unsigned Depth : {2u, 3u, 4u, 5u, 6u})
    addRow("structured", makeStructuredOfSize(Depth));
  for (unsigned Blocks : {16u, 64u, 256u, 1024u})
    addRow("random", makeRandomOfSize(Blocks));
  printTable(T);
}

void BM_LcmPipelineStructured(benchmark::State &State) {
  Function Fn = makeStructuredOfSize(unsigned(State.range(0)));
  uint64_t Blocks = Fn.numBlocks();
  for (auto _ : State) {
    Function Copy = Fn;
    PreRunResult R = runPre(Copy, PreStrategy::Lazy);
    benchmark::DoNotOptimize(R.Placement.numDeletions());
  }
  State.counters["blocks"] = double(Blocks);
  State.counters["blocks/s"] = benchmark::Counter(
      double(Blocks) * double(State.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LcmPipelineStructured)->Arg(3)->Arg(5)->Arg(7);

void BM_LcmPipelineRandom(benchmark::State &State) {
  Function Fn = makeRandomOfSize(unsigned(State.range(0)));
  uint64_t Blocks = Fn.numBlocks();
  for (auto _ : State) {
    Function Copy = Fn;
    PreRunResult R = runPre(Copy, PreStrategy::Lazy);
    benchmark::DoNotOptimize(R.Placement.numDeletions());
  }
  State.counters["blocks"] = double(Blocks);
  State.counters["blocks/s"] = benchmark::Counter(
      double(Blocks) * double(State.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LcmPipelineRandom)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Arg(4096);

void BM_AvailabilityOnly(benchmark::State &State) {
  Function Fn = makeRandomOfSize(unsigned(State.range(0)));
  LocalProperties LP(Fn);
  for (auto _ : State) {
    DataflowResult R = computeAvailability(Fn, LP);
    benchmark::DoNotOptimize(R.Stats.Passes);
  }
}
BENCHMARK(BM_AvailabilityOnly)->Arg(64)->Arg(1024)->Arg(4096);

void BM_MorelRenvoiseScaling(benchmark::State &State) {
  Function Fn = makeRandomOfSize(unsigned(State.range(0)));
  CfgEdges Edges(Fn);
  for (auto _ : State) {
    MorelRenvoiseResult R = computeMorelRenvoise(Fn, Edges);
    benchmark::DoNotOptimize(R.Stats.Passes);
  }
}
BENCHMARK(BM_MorelRenvoiseScaling)->Arg(64)->Arg(1024)->Arg(4096);

void BM_LocalPropertiesOnly(benchmark::State &State) {
  Function Fn = makeRandomOfSize(unsigned(State.range(0)));
  for (auto _ : State) {
    LocalProperties LP(Fn);
    benchmark::DoNotOptimize(LP.numExprs());
  }
}
BENCHMARK(BM_LocalPropertiesOnly)->Arg(64)->Arg(1024)->Arg(4096);

} // namespace

int main(int argc, char **argv) {
  printScalingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
