//===- bench/perf_scaling.cpp - Pipeline throughput and scaling ----------===//
//
// Experiment T3 companion (see EXPERIMENTS.md): wall-clock scaling of the
// full LCM pipeline and of each analysis with CFG size, on both structured
// and arbitrary random graphs.  The bit-vector round-robin solvers should
// scale near-linearly in blocks for reducible (structured) graphs, with
// modest extra passes for irreducible random ones.  Also prints a pass-
// count scaling table.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "support/SimdWords.h"
#include "workload/RandomCfg.h"
#include "workload/StructuredGen.h"

using namespace lcm;

namespace {

Function makeStructuredOfSize(unsigned Depth) {
  StructuredGenOptions Opts;
  Opts.Seed = 42;
  Opts.MaxDepth = Depth;
  Opts.MaxStmtsPerSeq = 5;
  Opts.NumVars = 8;
  Function Fn = generateStructured(Opts);
  runLocalCse(Fn);
  return Fn;
}

Function makeRandomOfSize(unsigned Blocks) {
  RandomCfgOptions Opts;
  Opts.Seed = 42;
  Opts.NumBlocks = Blocks;
  Opts.NumVars = 8;
  Function Fn = generateRandomCfg(Opts);
  runLocalCse(Fn);
  return Fn;
}

void printScalingTable() {
  printHeading("T3b", "solver pass counts vs CFG size");
  Table T({"graph", "blocks", "edges", "exprs", "avail passes",
           "ant passes", "later passes", "MR passes"});
  auto addRow = [&T](const char *Kind, Function Fn) {
    CfgEdges Edges(Fn);
    LocalProperties LP(Fn);
    // Pass counts are a round-robin notion; pin the strategy so the table
    // keeps measuring the classic iteration scheme.
    LazyCodeMotion Engine(Fn, Edges, LP, SolverStrategy::RoundRobin);
    (void)Engine.placement(PreStrategy::Lazy);
    MorelRenvoiseResult MR = computeMorelRenvoise(Fn, Edges);
    T.row()
        .add(Kind)
        .add(uint64_t(Fn.numBlocks()))
        .add(uint64_t(Edges.numEdges()))
        .add(uint64_t(Fn.exprs().size()))
        .add(Engine.availStats().Passes)
        .add(Engine.antStats().Passes)
        .add(Engine.laterStats().Passes)
        .add(MR.Stats.Passes);
  };
  for (unsigned Depth : {2u, 3u, 4u, 5u, 6u})
    addRow("structured", makeStructuredOfSize(Depth));
  for (unsigned Blocks : {16u, 64u, 256u, 1024u})
    addRow("random", makeRandomOfSize(Blocks));
  printTable(T);
}

/// Wall-clock head-to-head of the three gen/kill solvers on availability,
/// per graph family and size.  The acceptance bar for the sparse-arena
/// engine: >= 2x over round-robin on the largest structured and random
/// graphs, with zero per-visit heap allocation.
void printSolverComparisonTable() {
  printHeading("T3c", "solver wall-clock: round-robin vs worklist vs sparse");

  Table T({"graph", "blocks", "RR us", "WL us", "sparse us",
           "sparse/RR speedup"});
  double WorstLargestSpeedup = 1e9;

  auto timeSolve = [](const Function &Fn, const std::vector<GenKill> &Tr,
                      const BitVector &Empty, SolverStrategy S) {
    // Warm up (first sparse solve sizes the thread-local arena), then take
    // the best of 5 timed reps, each averaging over enough solves to reach
    // microsecond resolution.
    (void)solveGenKill(Fn, Direction::Forward, Meet::Intersection, Tr,
                       Empty, S);
    const int Inner = Fn.numBlocks() >= 2048 ? 3 : 20;
    double BestUs = 1e18;
    for (int Rep = 0; Rep != 5; ++Rep) {
      auto Start = std::chrono::steady_clock::now();
      for (int I = 0; I != Inner; ++I) {
        DataflowResult R = solveGenKill(Fn, Direction::Forward,
                                        Meet::Intersection, Tr, Empty, S);
        benchmark::DoNotOptimize(R.Stats.NodeVisits);
      }
      double Us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - Start)
                      .count() /
                  Inner;
      if (Us < BestUs)
        BestUs = Us;
    }
    return BestUs;
  };

  auto addRow = [&](const char *Kind, Function Fn, bool Largest) {
    LocalProperties LP(Fn);
    std::vector<GenKill> Tr(Fn.numBlocks());
    for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
      Tr[B].Gen = LP.comp(B);
      Tr[B].Kill = complement(LP.transp(B));
    }
    BitVector Empty(LP.numExprs());
    double RR = timeSolve(Fn, Tr, Empty, SolverStrategy::RoundRobin);
    double WL = timeSolve(Fn, Tr, Empty, SolverStrategy::Worklist);
    double SP = timeSolve(Fn, Tr, Empty, SolverStrategy::Sparse);
    double Speedup = SP > 0 ? RR / SP : 0.0;
    if (Largest && Speedup < WorstLargestSpeedup)
      WorstLargestSpeedup = Speedup;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.2fx", Speedup);
    T.row()
        .add(Kind)
        .add(uint64_t(Fn.numBlocks()))
        .add(RR, 1)
        .add(WL, 1)
        .add(SP, 1)
        .add(Buf);
  };

  // Flag the largest graph of each family by actual block count (the
  // generator's MaxDepth is an upper bound, not a size guarantee).
  std::vector<Function> Structured;
  for (unsigned Depth : {5u, 6u, 7u})
    Structured.push_back(makeStructuredOfSize(Depth));
  size_t BiggestStructured = 0;
  for (const Function &Fn : Structured)
    BiggestStructured = std::max(BiggestStructured, Fn.numBlocks());
  for (Function &Fn : Structured) {
    bool Largest = Fn.numBlocks() == BiggestStructured;
    addRow("structured", std::move(Fn), Largest);
  }
  for (unsigned Blocks : {256u, 1024u, 4096u})
    addRow("random", makeRandomOfSize(Blocks), Blocks == 4096);
  printTable(T);
  std::printf("\nshape check (sparse >= 2x round-robin on the largest "
              "structured and random graphs): %s (worst %.2fx)\n",
              WorstLargestSpeedup >= 2.0 ? "HOLDS" : "VIOLATED",
              WorstLargestSpeedup);
}

/// End-to-end word-op throughput of the sparse solver on the largest
/// random graph: how many bit-vector words per second the fused
/// meet+transfer kernels push once dispatch, worklists, and cache effects
/// are all included.  This is the solver-level number the kernel
/// microbench in perf_hotpath upper-bounds.
void printSolverKernelThroughput() {
  printHeading("T3d", "sparse-solver word-op throughput (4096-block random)");
  std::printf("kernel backend: %s\n", simdwords::backendName());
  benchRecordMetric("simd_backend",
                    json::Value::str(simdwords::backendName()));

  Function Fn = makeRandomOfSize(4096);
  LocalProperties LP(Fn);
  std::vector<GenKill> Tr(Fn.numBlocks());
  for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
    Tr[B].Gen = LP.comp(B);
    Tr[B].Kill = complement(LP.transp(B));
  }
  BitVector Empty(LP.numExprs());
  // Warm the thread-local arena, then measure a fixed rep count.
  (void)solveGenKill(Fn, Direction::Forward, Meet::Intersection, Tr, Empty,
                     SolverStrategy::Sparse);
  const int Reps = 10;
  const uint64_t OpsBefore = BitVectorOps::snapshot();
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I != Reps; ++I) {
    DataflowResult R = solveGenKill(Fn, Direction::Forward,
                                    Meet::Intersection, Tr, Empty,
                                    SolverStrategy::Sparse);
    benchmark::DoNotOptimize(R.Stats.NodeVisits);
  }
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  const uint64_t Ops = BitVectorOps::snapshot() - OpsBefore;
  const double WordsPerSec = Seconds > 0 ? double(Ops) / Seconds : 0.0;
  std::printf("word ops: %llu over %.4fs -> %.1f Mwords/s (%.1f MB/s)\n",
              (unsigned long long)Ops, Seconds, WordsPerSec / 1e6,
              WordsPerSec * 8 / 1e6);
  benchRecordMetric("sparse_word_ops_per_second", WordsPerSec);
  benchRecordMetric("sparse_kernel_mb_per_second", WordsPerSec * 8 / 1e6);
}

void BM_LcmPipelineStructured(benchmark::State &State) {
  Function Fn = makeStructuredOfSize(unsigned(State.range(0)));
  uint64_t Blocks = Fn.numBlocks();
  for (auto _ : State) {
    Function Copy = Fn;
    PreRunResult R = runPre(Copy, PreStrategy::Lazy);
    benchmark::DoNotOptimize(R.Placement.numDeletions());
  }
  State.counters["blocks"] = double(Blocks);
  State.counters["blocks/s"] = benchmark::Counter(
      double(Blocks) * double(State.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LcmPipelineStructured)->Arg(3)->Arg(5)->Arg(7);

void BM_LcmPipelineRandom(benchmark::State &State) {
  Function Fn = makeRandomOfSize(unsigned(State.range(0)));
  uint64_t Blocks = Fn.numBlocks();
  for (auto _ : State) {
    Function Copy = Fn;
    PreRunResult R = runPre(Copy, PreStrategy::Lazy);
    benchmark::DoNotOptimize(R.Placement.numDeletions());
  }
  State.counters["blocks"] = double(Blocks);
  State.counters["blocks/s"] = benchmark::Counter(
      double(Blocks) * double(State.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LcmPipelineRandom)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Arg(4096);

void BM_AvailabilityOnly(benchmark::State &State) {
  Function Fn = makeRandomOfSize(unsigned(State.range(0)));
  LocalProperties LP(Fn);
  for (auto _ : State) {
    DataflowResult R = computeAvailability(Fn, LP);
    benchmark::DoNotOptimize(R.Stats.Passes);
  }
}
BENCHMARK(BM_AvailabilityOnly)->Arg(64)->Arg(1024)->Arg(4096);

void BM_MorelRenvoiseScaling(benchmark::State &State) {
  Function Fn = makeRandomOfSize(unsigned(State.range(0)));
  CfgEdges Edges(Fn);
  for (auto _ : State) {
    MorelRenvoiseResult R = computeMorelRenvoise(Fn, Edges);
    benchmark::DoNotOptimize(R.Stats.Passes);
  }
}
BENCHMARK(BM_MorelRenvoiseScaling)->Arg(64)->Arg(1024)->Arg(4096);

void BM_LocalPropertiesOnly(benchmark::State &State) {
  Function Fn = makeRandomOfSize(unsigned(State.range(0)));
  for (auto _ : State) {
    LocalProperties LP(Fn);
    benchmark::DoNotOptimize(LP.numExprs());
  }
}
BENCHMARK(BM_LocalPropertiesOnly)->Arg(64)->Arg(1024)->Arg(4096);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "perf_scaling");
  printScalingTable();
  printSolverComparisonTable();
  printSolverKernelThroughput();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
