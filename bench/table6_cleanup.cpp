//===- bench/table6_cleanup.cpp - PRE copy overhead and cleanup (T6) -----===//
//
// Experiment T6 (see EXPERIMENTS.md): PRE trades computations for copies
// (`x = h` replacements and `h = e; x = h` saves).  The paper argues the
// copies are cheap and largely coalesced away downstream; this table
// measures it: dynamic instruction counts before PRE, after LCM, and after
// LCM followed by copy propagation + dead code elimination with the
// original variables observable.  Expected shape: LCM lowers evaluations
// but raises instruction count slightly; cleanup removes most of that
// overhead without changing evaluations.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "baseline/Cleanup.h"
#include "bench_common.h"
#include "interp/Interpreter.h"
#include "metrics/Cost.h"

using namespace lcm;

namespace {

struct Measured {
  uint64_t Evals = 0;
  uint64_t Instrs = 0;
};

Measured measure(const Function &Fn, size_t NumInputVars,
                 uint32_t OriginalBlockCount) {
  Measured M;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    RandomOracle Oracle(Seed ^ 0x94d049bb133111ebULL);
    Interpreter::Options Opts;
    Opts.MaxOriginalBlockVisits = 20000;
    Opts.OriginalBlockCount = OriginalBlockCount;
    InterpResult R = Interpreter::run(
        Fn, makeSeededInputs(Seed, NumInputVars), Oracle, Opts);
    M.Evals += R.TotalEvals;
    M.Instrs += R.InstrsExecuted;
  }
  return M;
}

void runTable6() {
  printHeading("T6", "copy overhead of PRE and its cleanup (5 seeded runs)");
  auto Corpus = experimentCorpus();

  Table T({"program", "evals none", "instrs none", "evals LCM",
           "instrs LCM", "evals LCM+cleanup", "instrs LCM+cleanup",
           "copies folded", "instrs removed"});
  uint64_t ShapeViolations = 0;
  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    Measured None =
        measure(Original, Original.numVars(), uint32_t(Original.numBlocks()));

    Function Lcm = Original;
    runPre(Lcm, PreStrategy::Lazy);
    Measured AfterLcm =
        measure(Lcm, Original.numVars(), uint32_t(Original.numBlocks()));

    Function Cleaned = Lcm;
    CleanupOptions Opts;
    Opts.NumObservableVars = Original.numVars();
    CleanupReport CR = runCleanup(Cleaned, Opts);
    Measured AfterCleanup =
        measure(Cleaned, Original.numVars(), uint32_t(Original.numBlocks()));

    T.row()
        .add(Entry.Name)
        .add(None.Evals)
        .add(None.Instrs)
        .add(AfterLcm.Evals)
        .add(AfterLcm.Instrs)
        .add(AfterCleanup.Evals)
        .add(AfterCleanup.Instrs)
        .add(CR.CopiesPropagated)
        .add(CR.InstrsRemoved);

    ShapeViolations += AfterLcm.Evals > None.Evals;
    ShapeViolations += AfterCleanup.Evals > AfterLcm.Evals;
    ShapeViolations += AfterCleanup.Instrs > AfterLcm.Instrs;
  }
  printTable(T);
  std::printf("\nshape check (LCM evals <= none; cleanup lowers instrs "
              "without raising evals): %s (%llu violations)\n",
              ShapeViolations == 0 ? "HOLDS" : "VIOLATED",
              (unsigned long long)ShapeViolations);
}

void BM_CleanupPass(benchmark::State &State) {
  auto Corpus = experimentCorpus();
  Function Base = Corpus.back().Make();
  size_t OrigVars = Base.numVars();
  runPre(Base, PreStrategy::Lazy);
  for (auto _ : State) {
    Function Fn = Base;
    CleanupOptions Opts;
    Opts.NumObservableVars = OrigVars;
    CleanupReport R = runCleanup(Fn, Opts);
    benchmark::DoNotOptimize(R.InstrsRemoved);
  }
}
BENCHMARK(BM_CleanupPass);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table6_cleanup");
  runTable6();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
