//===- bench/table2_lifetimes.cpp - Lifetime optimality (T2) -------------===//
//
// Experiment T2 (see EXPERIMENTS.md): the paper's lifetime-optimality
// theorem, measured.  For the three placements of the LCM family (same
// computation counts by T1), we report the temp-lifetime footprint:
// number of temps, total live block-boundary slots, and peak simultaneous
// pressure.  Expected shape: LCM <= ALCM and LCM <= BCM everywhere.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "metrics/Cost.h"

using namespace lcm;

namespace {

void runTable2() {
  printHeading("T2", "temporary lifetimes per placement strategy");
  auto Corpus = experimentCorpus();

  Table T({"program", "strategy", "temps", "liveSlots", "maxPressure"});
  uint64_t ShapeViolations = 0;
  uint64_t TotalSlots[3] = {0, 0, 0};
  const PreStrategy Order[3] = {PreStrategy::Busy, PreStrategy::AlmostLazy,
                                PreStrategy::Lazy};

  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    LifetimeStats Stats[3];
    for (int I = 0; I != 3; ++I) {
      Function Fn = Original;
      runPre(Fn, Order[I]);
      Stats[I] = measureTempLifetimes(Fn, Original.numVars());
      TotalSlots[I] += Stats[I].LiveBlockSlots;
      T.row()
          .add(Entry.Name)
          .add(preStrategyName(Order[I]))
          .add(Stats[I].NumTemps)
          .add(Stats[I].LiveBlockSlots)
          .add(Stats[I].MaxPressure);
    }
    ShapeViolations += Stats[2].LiveBlockSlots > Stats[0].LiveBlockSlots;
    ShapeViolations += Stats[2].LiveBlockSlots > Stats[1].LiveBlockSlots;
    ShapeViolations += Stats[2].MaxPressure > Stats[0].MaxPressure;
  }
  printTable(T);
  std::printf("\ntotals: BCM=%llu ALCM=%llu LCM=%llu live slots\n",
              (unsigned long long)TotalSlots[0],
              (unsigned long long)TotalSlots[1],
              (unsigned long long)TotalSlots[2]);
  std::printf("shape check (LCM <= ALCM, LCM <= BCM): %s (%llu violations)\n",
              ShapeViolations == 0 ? "HOLDS" : "VIOLATED",
              (unsigned long long)ShapeViolations);
}

void BM_LifetimeMeasurement(benchmark::State &State) {
  auto Corpus = experimentCorpus();
  Function Fn = Corpus.front().Make();
  size_t OrigVars = Fn.numVars();
  runPre(Fn, PreStrategy::Lazy);
  for (auto _ : State) {
    LifetimeStats S = measureTempLifetimes(Fn, OrigVars);
    benchmark::DoNotOptimize(S.LiveBlockSlots);
  }
}
BENCHMARK(BM_LifetimeMeasurement);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table2_lifetimes");
  runTable2();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
