//===- bench/fig3_frontiers.cpp - "As early as necessary, as late as ------===//
//                                 possible" (paper Fig. BCM vs LCM)
//
// Experiment F3 (see EXPERIMENTS.md): renders the complete analysis
// pipeline of the motivating example for the expression a+b — the
// availability/anticipability facts, the earliest frontier BCM uses, the
// delayed (later) frontier LCM uses, and the final placements of both —
// making the paper's "earliest vs latest" picture textual.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "ir/Printer.h"
#include "bench_common.h"
#include "workload/PaperExamples.h"

using namespace lcm;

namespace {

void reproduceFigure3() {
  Function Fn = makeMotivatingExample();
  CfgEdges Edges(Fn);
  LocalProperties LP(Fn);
  LazyCodeMotion Engine(Fn, Edges, LP);

  ExprId AB = InvalidExpr;
  for (ExprId E = 0; E != Fn.exprs().size(); ++E)
    if (Fn.exprText(E) == "a + b")
      AB = E;

  printHeading("F3", "the busy and lazy placement frontiers for a + b");
  std::printf("%s\n", printFunction(Fn).c_str());

  Table Blocks({"block", "ANTLOC", "COMP", "TRANSP", "ANTIN", "ANTOUT",
                "AVIN", "AVOUT", "LATERIN"});
  for (const BasicBlock &B : Fn.blocks()) {
    Blocks.row()
        .add(B.label())
        .add(LP.antloc(B.id()).test(AB) ? "*" : "")
        .add(LP.comp(B.id()).test(AB) ? "*" : "")
        .add(LP.transp(B.id()).test(AB) ? "*" : "")
        .add(Engine.antIn(B.id()).test(AB) ? "*" : "")
        .add(Engine.antOut(B.id()).test(AB) ? "*" : "")
        .add(Engine.avIn(B.id()).test(AB) ? "*" : "")
        .add(Engine.avOut(B.id()).test(AB) ? "*" : "")
        .add(Engine.laterIn(B.id()).test(AB) ? "*" : "");
  }
  printTable(Blocks);

  std::printf("\n");
  Table EdgeTable({"edge", "EARLIEST", "LATER", "INSERT(BCM)",
                   "INSERT(LCM)"});
  PrePlacement Busy = Engine.placement(PreStrategy::Busy);
  PrePlacement Lazy = Engine.placement(PreStrategy::Lazy);
  for (EdgeId E = 0; E != Edges.numEdges(); ++E) {
    const CfgEdge &Edge = Edges.edge(E);
    EdgeTable.row()
        .add(Fn.block(Edge.From).label() + "->" + Fn.block(Edge.To).label())
        .add(Engine.earliest(E).test(AB) ? "*" : "")
        .add(Engine.later(E).test(AB) ? "*" : "")
        .add(Busy.InsertEdge[E].test(AB) ? "*" : "")
        .add(Lazy.InsertEdge[E].test(AB) ? "*" : "");
  }
  printTable(EdgeTable);

  std::printf(
      "\nreading: BCM inserts at the EARLIEST frontier (b1->b2 and b3->b4);"
      "\nLCM delays b1->b2 into block b2 itself (kept + saved) and keeps"
      "\nonly the unavoidable insertion after the kill on b3->b4.\n");
}

void BM_FrontierAnalyses(benchmark::State &State) {
  Function Fn = makeMotivatingExample();
  CfgEdges Edges(Fn);
  LocalProperties LP(Fn);
  for (auto _ : State) {
    LazyCodeMotion Engine(Fn, Edges, LP);
    benchmark::DoNotOptimize(Engine.laterIn(0).size());
  }
}
BENCHMARK(BM_FrontierAnalyses);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "fig3_frontiers");
  reproduceFigure3();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
