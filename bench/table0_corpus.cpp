//===- bench/table0_corpus.cpp - Workload characterization (T0) ----------===//
//
// Experiment T0 (see EXPERIMENTS.md): what the corpus actually looks like
// — the table a paper would print before its results.  For every program:
// size, expression universe, loop structure, critical edges, reducibility,
// and the static-profile cost estimate, plus how many PRE candidate bits
// the safety analyses light up.  The specExprs column characterizes the
// speculation regime (docs/SPECPRE.md): how many expressions a skewed
// edge profile moves to a min-cut placement cheaper than LCM's.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "analysis/BlockFrequency.h"
#include "graph/CriticalEdges.h"
#include "graph/Dominators.h"
#include "graph/Loops.h"
#include "graph/Reducibility.h"
#include "specpre/SpecPre.h"
#include "bench_common.h"

using namespace lcm;

namespace {

void runTable0() {
  printHeading("T0", "corpus characterization");
  auto Corpus = experimentCorpus();

  Table T({"program", "blocks", "edges", "instrs", "ops", "exprs", "loops",
           "maxDepth", "critEdges", "reducible", "estCost", "specExprs"});
  for (const CorpusEntry &Entry : Corpus) {
    Function Fn = Entry.Make();
    CfgEdges Edges(Fn);
    Dominators Dom(Fn);
    LoopForest Forest(Fn, Dom);
    uint32_t MaxDepth = 0;
    for (BlockId B = 0; B != Fn.numBlocks(); ++B)
      MaxDepth = std::max(MaxDepth, Forest.depth(B));
    size_t Instrs = 0;
    for (const BasicBlock &B : Fn.blocks())
      Instrs += B.instrs().size();
    BlockFrequencies BF = estimateBlockFrequencies(Fn);

    // Expressions whose min-cut placement beats LCM under the skewed
    // synthetic profile — the same (mode, seed) the T1s section measures.
    Function SpecFn = Fn;
    specpre::EdgeProfile Profile = specpre::synthesizeEdgeProfile(
        SpecFn, specpre::ProfileMode::Skewed, /*Seed=*/11);
    specpre::SpecPreStats Stats = specpre::runSpecPre(SpecFn, &Profile);

    T.row()
        .add(Entry.Name)
        .add(uint64_t(Fn.numBlocks()))
        .add(uint64_t(Edges.numEdges()))
        .add(uint64_t(Instrs))
        .add(uint64_t(Fn.countOperations()))
        .add(uint64_t(Fn.exprs().size()))
        .add(uint64_t(Forest.loops().size()))
        .add(uint64_t(MaxDepth))
        .add(uint64_t(findCriticalEdges(Fn).size()))
        .add(isReducible(Fn, Dom) ? "yes" : "no")
        .add(estimatedOperationCost(Fn, BF), 1)
        .add(Stats.ExprsSpeculated);
  }
  printTable(T);
}

void BM_CorpusConstruction(benchmark::State &State) {
  auto Corpus = experimentCorpus();
  for (auto _ : State) {
    size_t Blocks = 0;
    for (const CorpusEntry &Entry : Corpus)
      Blocks += Entry.Make().numBlocks();
    benchmark::DoNotOptimize(Blocks);
  }
}
BENCHMARK(BM_CorpusConstruction);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table0_corpus");
  runTable0();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
