//===- bench/fig2_critical_edges.cpp - Reproduces paper Figure 2 ---------===//
//
// Experiment F2 (see EXPERIMENTS.md): the critical-edge phenomenon.  The
// join block j is partially redundant via q, but the only safe+profitable
// insertion point is the edge r->j, which leaves a branch and enters a
// join.  A node-insertion algorithm (Morel-Renvoise) must give up; edge
// placement splits r->j and removes the redundancy.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "graph/CriticalEdges.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "bench_common.h"
#include "workload/PaperExamples.h"

using namespace lcm;

namespace {

void reproduceFigure2() {
  Function Fn = makeCriticalEdgeExample();
  printHeading("F2", "critical edges block node-based code motion");
  std::printf("%s\n", printFunction(Fn).c_str());

  auto Crit = findCriticalEdges(Fn);
  std::printf("critical edges:\n");
  for (auto [From, SuccIdx] : Crit)
    std::printf("  %s -> %s\n", Fn.block(From).label().c_str(),
                Fn.block(Fn.block(From).succs()[SuccIdx]).label().c_str());

  // Morel-Renvoise (node insertions only) is stuck.
  {
    Function Copy = makeCriticalEdgeExample();
    CfgEdges Edges(Copy);
    MorelRenvoiseResult MR = computeMorelRenvoise(Copy, Edges);
    std::printf("\nMorel-Renvoise placement: %s\n",
                MR.Placement.isNoop() ? "(nothing - motion blocked)"
                                      : "(unexpectedly found motion!)");
  }

  // LCM splits the edge.
  Function After = makeCriticalEdgeExample();
  PreRunResult R = runPre(After, PreStrategy::Lazy);
  std::printf("LCM placement: %llu insertion(s), %llu deletion(s), "
              "%llu save(s); %llu edge split\n",
              (unsigned long long)R.Placement.numEdgeInsertions(),
              (unsigned long long)R.Placement.numDeletions(),
              (unsigned long long)R.Placement.numSaves(),
              (unsigned long long)R.Report.SplitBlocks);
  std::printf("\n-- program after LCM (note the split block r.j) --\n%s\n",
              printFunction(After).c_str());

  // The quantitative difference.
  Function Orig = makeCriticalEdgeExample();
  Table T({"strategy", "staticOps", "dynEvals(5 runs)"});
  for (auto &[Name, Transform] :
       std::vector<std::pair<std::string, TransformFn>>{
           {"none", [](Function &) {}},
           {"MR", [](Function &F) { runMorelRenvoise(F); }},
           {"LCM", [](Function &F) { runPre(F, PreStrategy::Lazy); }}}) {
    StrategyOutcome O = evaluateStrategy(Name, Orig, Transform);
    T.row().add(O.Strategy).add(O.StaticOps).add(O.DynamicEvals);
  }
  printTable(T);
  std::printf("\nshape check: LCM strictly beats MR here, MR == none.\n");
}

void BM_Figure2Pipeline(benchmark::State &State) {
  for (auto _ : State) {
    Function Fn = makeCriticalEdgeExample();
    PreRunResult R = runPre(Fn, PreStrategy::Lazy);
    benchmark::DoNotOptimize(R.Report.SplitBlocks);
  }
}
BENCHMARK(BM_Figure2Pipeline);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "fig2_critical_edges");
  reproduceFigure2();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
