//===- bench/table3_dataflow_cost.cpp - Analysis cost (T3) ---------------===//
//
// Experiment T3 (see EXPERIMENTS.md): the paper's engineering claim that
// optimal PRE decomposes into *unidirectional* bit-vector problems.  For
// every corpus program we report round-robin passes and bit-vector word
// operations for each of LCM's four analyses, against the coupled
// bidirectional Morel-Renvoise system.  Expected shape: each LCM analysis
// converges in no more passes than the bidirectional system, and the MR
// word-op cost exceeds any single LCM pass.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace lcm;

namespace {

void runTable3() {
  printHeading("T3", "dataflow solver cost: 4x unidirectional vs "
                     "bidirectional");
  auto Corpus = experimentCorpus();

  Table T({"program", "blocks", "exprs", "avail p/w", "ant p/w",
           "later p/w", "isol p/w", "LCM total w", "MR bidir p/w",
           "MR total w"});
  uint64_t LcmTotal = 0, MrTotal = 0, MaxLcmPasses = 0, MaxMrPasses = 0;
  auto cell = [](const SolverStats &S) {
    return std::to_string(S.Passes) + "/" + std::to_string(S.WordOps);
  };
  for (const CorpusEntry &Entry : Corpus) {
    Function Fn = Entry.Make();
    Function ForLcm = Fn;
    // T3 compares the paper's classic round-robin iteration scheme against
    // MR; pin the strategy so the pass/word-op cells stay meaningful.
    PreRunResult R =
        runPre(ForLcm, PreStrategy::Lazy, SolverStrategy::RoundRobin);

    CfgEdges Edges(Fn);
    MorelRenvoiseResult MR = computeMorelRenvoise(Fn, Edges);
    // MR's bidirectional system consumes availability and partial
    // availability as inputs; charge those prerequisite solves to it.
    LocalProperties LP(Fn);
    uint64_t MrPrereq =
        computeAvailability(Fn, LP, SolverStrategy::RoundRobin)
            .Stats.WordOps +
        computePartialAvailability(Fn, LP, SolverStrategy::RoundRobin)
            .Stats.WordOps;
    uint64_t MrWords = MR.Stats.WordOps + MrPrereq;

    uint64_t LcmWords = R.AvailStats.WordOps + R.AntStats.WordOps +
                        R.LaterStats.WordOps + R.IsolationStats.WordOps;
    LcmTotal += LcmWords;
    MrTotal += MrWords;
    for (const SolverStats *S :
         {&R.AvailStats, &R.AntStats, &R.LaterStats, &R.IsolationStats})
      MaxLcmPasses = std::max(MaxLcmPasses, S->Passes);
    MaxMrPasses = std::max(MaxMrPasses, MR.Stats.Passes);

    T.row()
        .add(Entry.Name)
        .add(uint64_t(Fn.numBlocks()))
        .add(uint64_t(Fn.exprs().size()))
        .add(cell(R.AvailStats))
        .add(cell(R.AntStats))
        .add(cell(R.LaterStats))
        .add(cell(R.IsolationStats))
        .add(LcmWords)
        .add(cell(MR.Stats))
        .add(MrWords);
  }
  printTable(T);
  std::printf("\ntotals: LCM(all four analyses)=%llu word ops, "
              "MR(avail + partial-avail + bidirectional)=%llu word ops\n",
              (unsigned long long)LcmTotal, (unsigned long long)MrTotal);
  std::printf("max passes: any single LCM analysis=%llu, MR=%llu\n",
              (unsigned long long)MaxLcmPasses,
              (unsigned long long)MaxMrPasses);
  std::printf("shape check (MR needs at least as many passes as any "
              "unidirectional analysis): %s\n",
              MaxMrPasses >= MaxLcmPasses ? "HOLDS" : "VIOLATED");
  benchRecordMetric("lcm_total_word_ops", LcmTotal);
  benchRecordMetric("mr_total_word_ops", MrTotal);
  benchRecordMetric("max_lcm_passes", MaxLcmPasses);
  benchRecordMetric("max_mr_passes", MaxMrPasses);
  benchRecordMetric("shape_holds", MaxMrPasses >= MaxLcmPasses);
}

void BM_LcmAnalyses(benchmark::State &State) {
  auto Corpus = experimentCorpus();
  Function Fn = Corpus.back().Make();
  CfgEdges Edges(Fn);
  LocalProperties LP(Fn);
  for (auto _ : State) {
    LazyCodeMotion Engine(Fn, Edges, LP);
    PrePlacement P = Engine.placement(PreStrategy::Lazy);
    benchmark::DoNotOptimize(P.numDeletions());
  }
}
BENCHMARK(BM_LcmAnalyses);

void BM_MorelRenvoiseAnalyses(benchmark::State &State) {
  auto Corpus = experimentCorpus();
  Function Fn = Corpus.back().Make();
  CfgEdges Edges(Fn);
  for (auto _ : State) {
    MorelRenvoiseResult R = computeMorelRenvoise(Fn, Edges);
    benchmark::DoNotOptimize(R.Placement.numDeletions());
  }
}
BENCHMARK(BM_MorelRenvoiseAnalyses);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table3_dataflow_cost");
  runTable3();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
