//===- bench/table1_computations.cpp - Computational optimality (T1) -----===//
//
// Experiment T1 (see EXPERIMENTS.md): the paper's computational-optimality
// theorem, measured.  For every corpus program and every strategy we
// report static operations, loop-depth-weighted static operations, and
// dynamic evaluations summed over five seeded runs.  Expected shape:
//
//   LCM == ALCM == BCM  <=  MR <= none,  CSE <= none,  LCM <= every row.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace lcm;

namespace {

void runTable1() {
  printHeading("T1", "computation counts per strategy (dyn = 5 seeded runs)");
  auto Corpus = experimentCorpus();
  auto Strategies = allStrategies();

  Table T({"program", "strategy", "staticOps", "weightedStatic", "dynEvals",
           "allRunsExit"});
  uint64_t ShapeViolations = 0;
  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    std::map<std::string, StrategyOutcome> Outcomes;
    for (auto &[Name, Transform] : Strategies) {
      StrategyOutcome O = evaluateStrategy(Name, Original, Transform);
      Outcomes[Name] = O;
      T.row()
          .add(Entry.Name)
          .add(O.Strategy)
          .add(O.StaticOps)
          .add(O.WeightedStaticOps)
          .add(O.DynamicEvals)
          .add(O.AllRunsReachedExit ? "yes" : "no");
    }
    // Shape checks, on fully-terminating programs only.
    if (Outcomes["none"].AllRunsReachedExit) {
      const uint64_t Lcm = Outcomes["LCM"].DynamicEvals;
      ShapeViolations += Outcomes["BCM"].DynamicEvals != Lcm;
      ShapeViolations += Outcomes["ALCM"].DynamicEvals != Lcm;
      ShapeViolations += Lcm > Outcomes["MR"].DynamicEvals;
      ShapeViolations += Lcm > Outcomes["CSE"].DynamicEvals;
      ShapeViolations += Lcm > Outcomes["none"].DynamicEvals;
      ShapeViolations +=
          Outcomes["MR"].DynamicEvals > Outcomes["none"].DynamicEvals;
      ShapeViolations +=
          Outcomes["CSE"].DynamicEvals > Outcomes["none"].DynamicEvals;
    }
  }
  printTable(T);
  std::printf("\nshape check (BCM==ALCM==LCM <= MR,CSE <= none): %s"
              " (%llu violations)\n",
              ShapeViolations == 0 ? "HOLDS" : "VIOLATED",
              (unsigned long long)ShapeViolations);
  benchRecordMetric("shape_violations", ShapeViolations);
  benchRecordMetric("shape_holds", ShapeViolations == 0);

  // Aggregate winners row.
  Table Agg({"strategy", "total dynEvals", "vs none"});
  std::map<std::string, uint64_t> Totals;
  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    for (auto &[Name, Transform] : Strategies)
      Totals[Name] +=
          evaluateStrategy(Name, Original, Transform).DynamicEvals;
  }
  for (auto &[Name, Transform] : Strategies) {
    Agg.row().add(Name).add(Totals[Name]).add(
        100.0 * double(Totals[Name]) / double(Totals["none"]), 1);
  }
  std::printf("\n");
  printTable(Agg);
}

void BM_Table1FullSweep(benchmark::State &State) {
  auto Corpus = experimentCorpus();
  for (auto _ : State) {
    uint64_t Total = 0;
    for (const CorpusEntry &Entry : Corpus) {
      Function Fn = Entry.Make();
      Total += runPre(Fn, PreStrategy::Lazy).Placement.numDeletions();
    }
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_Table1FullSweep);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table1_computations");
  runTable1();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
