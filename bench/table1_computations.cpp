//===- bench/table1_computations.cpp - Computational optimality (T1) -----===//
//
// Experiment T1 (see EXPERIMENTS.md): the paper's computational-optimality
// theorem, measured.  For every corpus program and every strategy we
// report static operations, loop-depth-weighted static operations, and
// dynamic evaluations summed over five seeded runs.  Expected shape:
//
//   LCM == ALCM == BCM  <=  MR <= none,  CSE <= none,  LCM <= every row.
//
// The T1s section leaves the safe regime: under a skewed edge profile
// (docs/SPECPRE.md) the speculative min-cut backend may beat LCM's
// optimum.  Profiled evaluation counts are analytic — both placements
// priced against the same profile on the same CFG snapshot — so the
// comparison is exact, not sampled.
//
// The T1g section widens LCM's lexical view instead: the GVN front end
// (docs/GVN.md) canonicalizes congruent expressions before placement, so
// redundancies routed through copies, commuted operands, and the memory
// state become visible.  Seeded dynamic evaluations of `gvn,lcm` must
// never exceed plain `lcm` (classes only ever merge); a wide memory
// kernel additionally pushes the post-GVN expression pool past the SIMD
// dispatch threshold so the solver's vector kernels get exercised.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "gvn/Gvn.h"
#include "specpre/SpecPre.h"
#include "support/Stats.h"
#include "workload/AddressGen.h"
#include "bench_common.h"

using namespace lcm;

namespace {

void runTable1() {
  printHeading("T1", "computation counts per strategy (dyn = 5 seeded runs)");
  auto Corpus = experimentCorpus();
  auto Strategies = allStrategies();

  Table T({"program", "strategy", "staticOps", "weightedStatic", "dynEvals",
           "allRunsExit"});
  uint64_t ShapeViolations = 0;
  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    std::map<std::string, StrategyOutcome> Outcomes;
    for (auto &[Name, Transform] : Strategies) {
      StrategyOutcome O = evaluateStrategy(Name, Original, Transform);
      Outcomes[Name] = O;
      T.row()
          .add(Entry.Name)
          .add(O.Strategy)
          .add(O.StaticOps)
          .add(O.WeightedStaticOps)
          .add(O.DynamicEvals)
          .add(O.AllRunsReachedExit ? "yes" : "no");
    }
    // Shape checks, on fully-terminating programs only.
    if (Outcomes["none"].AllRunsReachedExit) {
      const uint64_t Lcm = Outcomes["LCM"].DynamicEvals;
      ShapeViolations += Outcomes["BCM"].DynamicEvals != Lcm;
      ShapeViolations += Outcomes["ALCM"].DynamicEvals != Lcm;
      ShapeViolations += Lcm > Outcomes["MR"].DynamicEvals;
      ShapeViolations += Lcm > Outcomes["CSE"].DynamicEvals;
      ShapeViolations += Lcm > Outcomes["none"].DynamicEvals;
      ShapeViolations +=
          Outcomes["MR"].DynamicEvals > Outcomes["none"].DynamicEvals;
      ShapeViolations +=
          Outcomes["CSE"].DynamicEvals > Outcomes["none"].DynamicEvals;
    }
  }
  printTable(T);
  std::printf("\nshape check (BCM==ALCM==LCM <= MR,CSE <= none): %s"
              " (%llu violations)\n",
              ShapeViolations == 0 ? "HOLDS" : "VIOLATED",
              (unsigned long long)ShapeViolations);
  benchRecordMetric("shape_violations", ShapeViolations);
  benchRecordMetric("shape_holds", ShapeViolations == 0);

  // Aggregate winners row.
  Table Agg({"strategy", "total dynEvals", "vs none"});
  std::map<std::string, uint64_t> Totals;
  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    for (auto &[Name, Transform] : Strategies)
      Totals[Name] +=
          evaluateStrategy(Name, Original, Transform).DynamicEvals;
  }
  for (auto &[Name, Transform] : Strategies) {
    Agg.row().add(Name).add(Totals[Name]).add(
        100.0 * double(Totals[Name]) / double(Totals["none"]), 1);
  }
  std::printf("\n");
  printTable(Agg);
}

void runTable1Speculative() {
  printHeading("T1s", "speculative vs LCM profiled evals (skewed profile)");
  auto Corpus = experimentCorpus();

  Table T({"program", "specExprs", "profEvalsLCM", "profEvalsSpec", "delta",
           "saved%"});
  uint64_t TotalLcm = 0, TotalSpec = 0, Improved = 0, Regressions = 0;
  for (const CorpusEntry &Entry : Corpus) {
    Function Fn = Entry.Make();
    specpre::EdgeProfile Profile = specpre::synthesizeEdgeProfile(
        Fn, specpre::ProfileMode::Skewed, /*Seed=*/11);

    CfgEdges Edges(Fn);
    LocalProperties LP(Fn);
    specpre::ResolvedProfile RP;
    specpre::resolveProfile(Profile, Fn, Edges, RP);

    LazyCodeMotion Engine(Fn, Edges, LP);
    PrePlacement LcmP = Engine.placement(PreStrategy::Lazy);
    PrePlacement SpecP;
    specpre::SpecPreStats S;
    specpre::computeSpecPrePlacement(Fn, Edges, LP, LcmP, RP, SpecP, S);

    const uint64_t LcmCost = specpre::profiledPlacementCost(Fn, Edges, LcmP, RP);
    const uint64_t SpecCost =
        specpre::profiledPlacementCost(Fn, Edges, SpecP, RP);
    TotalLcm += LcmCost;
    TotalSpec += SpecCost;
    Improved += SpecCost < LcmCost;
    Regressions += SpecCost > LcmCost;

    T.row()
        .add(Entry.Name)
        .add(S.ExprsSpeculated)
        .add(LcmCost)
        .add(SpecCost)
        .add(int64_t(LcmCost) - int64_t(SpecCost))
        .add(LcmCost != 0 ? 100.0 * (double(LcmCost) - double(SpecCost)) /
                                double(LcmCost)
                          : 0.0,
             1);
  }
  printTable(T);
  std::printf("\nspeculation vs LCM: improved=%llu regressed=%llu "
              "(cost guarantee: regressed must be 0)\n",
              (unsigned long long)Improved, (unsigned long long)Regressions);
  benchRecordMetric("specpre_profiled_evals_lcm", TotalLcm);
  benchRecordMetric("specpre_profiled_evals_spec", TotalSpec);
  benchRecordMetric("specpre_programs_improved", Improved);
  benchRecordMetric("specpre_regressions", Regressions);
  benchRecordMetric("specpre_never_costlier", Regressions == 0);
}

void runTable1Gvn() {
  printHeading("T1g",
               "GVN front end vs lexical LCM (dyn = 5 seeded runs)");
  auto Corpus = experimentCorpus();

  Table T({"program", "classes", "mergedExprs", "dynLCM", "dynGVN+LCM",
           "delta", "saved%"});
  uint64_t TotalLex = 0, TotalGvn = 0, TotalMerged = 0, Improved = 0,
           Regressions = 0;
  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    StrategyOutcome Lex = evaluateStrategy(
        "LCM", Original, [](Function &F) { runPre(F, PreStrategy::Lazy); });
    gvn::GvnReport Report;
    StrategyOutcome Gv =
        evaluateStrategy("GVN+LCM", Original, [&Report](Function &F) {
          // Mirrors the `gvn` pipeline pass: value-number, then restore
          // the LCSE precondition the merges may have broken.
          Report = gvn::runGvn(F);
          runLocalCse(F);
          runPre(F, PreStrategy::Lazy);
        });
    T.row()
        .add(Entry.Name)
        .add(Report.Classes)
        .add(Report.MergedExprs)
        .add(Lex.DynamicEvals)
        .add(Gv.DynamicEvals)
        .add(int64_t(Lex.DynamicEvals) - int64_t(Gv.DynamicEvals))
        .add(Lex.DynamicEvals != 0
                 ? 100.0 *
                       (double(Lex.DynamicEvals) - double(Gv.DynamicEvals)) /
                       double(Lex.DynamicEvals)
                 : 0.0,
             1);
    // The never-worse contract only binds on fully-terminating runs;
    // budget-truncated paths can diverge for either side.
    if (!Lex.AllRunsReachedExit || !Gv.AllRunsReachedExit)
      continue;
    TotalLex += Lex.DynamicEvals;
    TotalGvn += Gv.DynamicEvals;
    TotalMerged += Report.MergedExprs;
    Improved += Gv.DynamicEvals < Lex.DynamicEvals;
    Regressions += Gv.DynamicEvals > Lex.DynamicEvals;
  }
  printTable(T);
  std::printf("\nGVN+LCM vs LCM: improved=%llu regressed=%llu "
              "(merge-never-split contract: regressed must be 0)\n",
              (unsigned long long)Improved, (unsigned long long)Regressions);
  benchRecordMetric("gvn_dyn_evals_lexical", TotalLex);
  benchRecordMetric("gvn_dyn_evals", TotalGvn);
  benchRecordMetric("gvn_merged_exprs", TotalMerged);
  benchRecordMetric("gvn_programs_improved", Improved);
  benchRecordMetric("gvn_regressions", Regressions);
  benchRecordMetric("gvn_never_worse", Regressions == 0);

  // A deliberately wide memory kernel: after GVN canonicalization the
  // expression pool still spans >= 512 distinct expressions, so the LCM
  // bit vectors cross support/SimdWords.h's MinSimdWords (8 words) and the
  // solver takes the runtime-dispatched SIMD kernels — the coverage the CI
  // bench-smoke job asserts on via gvn_wide_simd_word_ops.
  MemoryGenOptions Wide;
  Wide.Seed = 7;
  Wide.Depth = 2;
  Wide.TripCount = 3;
  Wide.NumArrays = 24;
  Wide.StmtsPerBody = 600;
  Wide.ReusePercent = 20;
  Function WideFn = generateMemoryKernel(Wide);
  runLocalCse(WideFn);
  gvn::GvnReport WideReport = gvn::runGvn(WideFn);
  runLocalCse(WideFn);
  const uint64_t WideExprs = WideFn.exprs().size();
  const uint64_t SimdBefore = Stats::get("dataflow.word_ops_simd");
  runPre(WideFn, PreStrategy::Lazy);
  const uint64_t SimdOps = Stats::get("dataflow.word_ops_simd") - SimdBefore;
  std::printf("\nwide kernel (mem, seed=%llu): exprs=%llu merged=%llu "
              "simd_word_ops=%llu\n",
              (unsigned long long)Wide.Seed, (unsigned long long)WideExprs,
              (unsigned long long)WideReport.MergedExprs,
              (unsigned long long)SimdOps);
  benchRecordMetric("gvn_wide_exprs", WideExprs);
  benchRecordMetric("gvn_wide_simd_word_ops", SimdOps);
}

void BM_Table1FullSweep(benchmark::State &State) {
  auto Corpus = experimentCorpus();
  for (auto _ : State) {
    uint64_t Total = 0;
    for (const CorpusEntry &Entry : Corpus) {
      Function Fn = Entry.Make();
      Total += runPre(Fn, PreStrategy::Lazy).Placement.numDeletions();
    }
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_Table1FullSweep);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table1_computations");
  runTable1();
  runTable1Speculative();
  runTable1Gvn();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
