//===- bench/table1_computations.cpp - Computational optimality (T1) -----===//
//
// Experiment T1 (see EXPERIMENTS.md): the paper's computational-optimality
// theorem, measured.  For every corpus program and every strategy we
// report static operations, loop-depth-weighted static operations, and
// dynamic evaluations summed over five seeded runs.  Expected shape:
//
//   LCM == ALCM == BCM  <=  MR <= none,  CSE <= none,  LCM <= every row.
//
// The T1s section leaves the safe regime: under a skewed edge profile
// (docs/SPECPRE.md) the speculative min-cut backend may beat LCM's
// optimum.  Profiled evaluation counts are analytic — both placements
// priced against the same profile on the same CFG snapshot — so the
// comparison is exact, not sampled.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "specpre/SpecPre.h"
#include "bench_common.h"

using namespace lcm;

namespace {

void runTable1() {
  printHeading("T1", "computation counts per strategy (dyn = 5 seeded runs)");
  auto Corpus = experimentCorpus();
  auto Strategies = allStrategies();

  Table T({"program", "strategy", "staticOps", "weightedStatic", "dynEvals",
           "allRunsExit"});
  uint64_t ShapeViolations = 0;
  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    std::map<std::string, StrategyOutcome> Outcomes;
    for (auto &[Name, Transform] : Strategies) {
      StrategyOutcome O = evaluateStrategy(Name, Original, Transform);
      Outcomes[Name] = O;
      T.row()
          .add(Entry.Name)
          .add(O.Strategy)
          .add(O.StaticOps)
          .add(O.WeightedStaticOps)
          .add(O.DynamicEvals)
          .add(O.AllRunsReachedExit ? "yes" : "no");
    }
    // Shape checks, on fully-terminating programs only.
    if (Outcomes["none"].AllRunsReachedExit) {
      const uint64_t Lcm = Outcomes["LCM"].DynamicEvals;
      ShapeViolations += Outcomes["BCM"].DynamicEvals != Lcm;
      ShapeViolations += Outcomes["ALCM"].DynamicEvals != Lcm;
      ShapeViolations += Lcm > Outcomes["MR"].DynamicEvals;
      ShapeViolations += Lcm > Outcomes["CSE"].DynamicEvals;
      ShapeViolations += Lcm > Outcomes["none"].DynamicEvals;
      ShapeViolations +=
          Outcomes["MR"].DynamicEvals > Outcomes["none"].DynamicEvals;
      ShapeViolations +=
          Outcomes["CSE"].DynamicEvals > Outcomes["none"].DynamicEvals;
    }
  }
  printTable(T);
  std::printf("\nshape check (BCM==ALCM==LCM <= MR,CSE <= none): %s"
              " (%llu violations)\n",
              ShapeViolations == 0 ? "HOLDS" : "VIOLATED",
              (unsigned long long)ShapeViolations);
  benchRecordMetric("shape_violations", ShapeViolations);
  benchRecordMetric("shape_holds", ShapeViolations == 0);

  // Aggregate winners row.
  Table Agg({"strategy", "total dynEvals", "vs none"});
  std::map<std::string, uint64_t> Totals;
  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    for (auto &[Name, Transform] : Strategies)
      Totals[Name] +=
          evaluateStrategy(Name, Original, Transform).DynamicEvals;
  }
  for (auto &[Name, Transform] : Strategies) {
    Agg.row().add(Name).add(Totals[Name]).add(
        100.0 * double(Totals[Name]) / double(Totals["none"]), 1);
  }
  std::printf("\n");
  printTable(Agg);
}

void runTable1Speculative() {
  printHeading("T1s", "speculative vs LCM profiled evals (skewed profile)");
  auto Corpus = experimentCorpus();

  Table T({"program", "specExprs", "profEvalsLCM", "profEvalsSpec", "delta",
           "saved%"});
  uint64_t TotalLcm = 0, TotalSpec = 0, Improved = 0, Regressions = 0;
  for (const CorpusEntry &Entry : Corpus) {
    Function Fn = Entry.Make();
    specpre::EdgeProfile Profile = specpre::synthesizeEdgeProfile(
        Fn, specpre::ProfileMode::Skewed, /*Seed=*/11);

    CfgEdges Edges(Fn);
    LocalProperties LP(Fn);
    specpre::ResolvedProfile RP;
    specpre::resolveProfile(Profile, Fn, Edges, RP);

    LazyCodeMotion Engine(Fn, Edges, LP);
    PrePlacement LcmP = Engine.placement(PreStrategy::Lazy);
    PrePlacement SpecP;
    specpre::SpecPreStats S;
    specpre::computeSpecPrePlacement(Fn, Edges, LP, LcmP, RP, SpecP, S);

    const uint64_t LcmCost = specpre::profiledPlacementCost(Fn, Edges, LcmP, RP);
    const uint64_t SpecCost =
        specpre::profiledPlacementCost(Fn, Edges, SpecP, RP);
    TotalLcm += LcmCost;
    TotalSpec += SpecCost;
    Improved += SpecCost < LcmCost;
    Regressions += SpecCost > LcmCost;

    T.row()
        .add(Entry.Name)
        .add(S.ExprsSpeculated)
        .add(LcmCost)
        .add(SpecCost)
        .add(int64_t(LcmCost) - int64_t(SpecCost))
        .add(LcmCost != 0 ? 100.0 * (double(LcmCost) - double(SpecCost)) /
                                double(LcmCost)
                          : 0.0,
             1);
  }
  printTable(T);
  std::printf("\nspeculation vs LCM: improved=%llu regressed=%llu "
              "(cost guarantee: regressed must be 0)\n",
              (unsigned long long)Improved, (unsigned long long)Regressions);
  benchRecordMetric("specpre_profiled_evals_lcm", TotalLcm);
  benchRecordMetric("specpre_profiled_evals_spec", TotalSpec);
  benchRecordMetric("specpre_programs_improved", Improved);
  benchRecordMetric("specpre_regressions", Regressions);
  benchRecordMetric("specpre_never_costlier", Regressions == 0);
}

void BM_Table1FullSweep(benchmark::State &State) {
  auto Corpus = experimentCorpus();
  for (auto _ : State) {
    uint64_t Total = 0;
    for (const CorpusEntry &Entry : Corpus) {
      Function Fn = Entry.Make();
      Total += runPre(Fn, PreStrategy::Lazy).Placement.numDeletions();
    }
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_Table1FullSweep);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table1_computations");
  runTable1();
  runTable1Speculative();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
