//===- bench/table4_isolation.cpp - Isolation analysis ablation (T4) -----===//
//
// Experiment T4 (see EXPERIMENTS.md): what the paper's isolation analysis
// buys.  ALCM (= LCM minus isolation) initializes a temp at every kept
// downward-exposed computation; LCM initializes only where a replaced
// computation actually consumes the value.  We report saves emitted,
// useless saves avoided, and the temp-lifetime footprint of the residue.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "metrics/Cost.h"

using namespace lcm;

namespace {

void runTable4() {
  printHeading("T4", "isolation ablation: ALCM vs LCM save pruning");
  auto Corpus = experimentCorpus();

  Table T({"program", "saves ALCM", "saves LCM", "avoided", "temps ALCM",
           "temps LCM", "slots ALCM", "slots LCM"});
  uint64_t TotalAvoided = 0, ShapeViolations = 0;
  for (const CorpusEntry &Entry : Corpus) {
    Function Original = Entry.Make();
    CfgEdges Edges(Original);
    LocalProperties LP(Original);
    LazyCodeMotion Engine(Original, Edges, LP);
    PrePlacement Almost = Engine.placement(PreStrategy::AlmostLazy);
    PrePlacement Lazy = Engine.placement(PreStrategy::Lazy);

    Function AfterAlmost = Original;
    runPre(AfterAlmost, PreStrategy::AlmostLazy);
    Function AfterLazy = Original;
    runPre(AfterLazy, PreStrategy::Lazy);
    LifetimeStats SA = measureTempLifetimes(AfterAlmost, Original.numVars());
    LifetimeStats SL = measureTempLifetimes(AfterLazy, Original.numVars());

    uint64_t Avoided = Almost.numSaves() - Lazy.numSaves();
    TotalAvoided += Avoided;
    ShapeViolations += Lazy.numSaves() > Almost.numSaves();
    ShapeViolations += SL.LiveBlockSlots > SA.LiveBlockSlots;

    T.row()
        .add(Entry.Name)
        .add(Almost.numSaves())
        .add(Lazy.numSaves())
        .add(Avoided)
        .add(SA.NumTemps)
        .add(SL.NumTemps)
        .add(SA.LiveBlockSlots)
        .add(SL.LiveBlockSlots);
  }
  printTable(T);
  std::printf("\ntotal useless saves avoided by isolation: %llu\n",
              (unsigned long long)TotalAvoided);
  std::printf("shape check (LCM saves <= ALCM saves, LCM slots <= ALCM "
              "slots): %s (%llu violations)\n",
              ShapeViolations == 0 ? "HOLDS" : "VIOLATED",
              (unsigned long long)ShapeViolations);
}

void BM_IsolationAnalysis(benchmark::State &State) {
  auto Corpus = experimentCorpus();
  Function Fn = Corpus.back().Make();
  CfgEdges Edges(Fn);
  LocalProperties LP(Fn);
  LazyCodeMotion Engine(Fn, Edges, LP);
  for (auto _ : State) {
    PrePlacement P = Engine.placement(PreStrategy::Lazy);
    benchmark::DoNotOptimize(P.numSaves());
  }
}
BENCHMARK(BM_IsolationAnalysis);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table4_isolation");
  runTable4();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
