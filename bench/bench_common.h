//===- bench/bench_common.h - Shared helpers for the experiment harness --===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef LCM_BENCH_BENCH_COMMON_H
#define LCM_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "baseline/GlobalCse.h"
#include "baseline/Licm.h"
#include "baseline/MorelRenvoise.h"
#include "core/Lcm.h"
#include "core/LocalCse.h"
#include "metrics/Compare.h"
#include "support/Table.h"
#include "workload/Corpus.h"

namespace lcm {

/// Returns the default corpus with the paper's LCSE precondition applied.
inline std::vector<CorpusEntry> experimentCorpus() {
  std::vector<CorpusEntry> Corpus = makeDefaultCorpus();
  for (CorpusEntry &Entry : Corpus) {
    auto Raw = Entry.Make;
    Entry.Make = [Raw] {
      Function Fn = Raw();
      runLocalCse(Fn);
      return Fn;
    };
  }
  return Corpus;
}

/// The strategies the table experiments sweep (name -> transform).
inline std::vector<std::pair<std::string, TransformFn>>
allStrategies() {
  return {
      {"none", [](Function &) {}},
      {"CSE", [](Function &F) { runGlobalCse(F); }},
      {"LICM-safe",
       [](Function &F) { runLicm(F, LicmMode::SafeOnly); }},
      {"LICM-spec",
       [](Function &F) { runLicm(F, LicmMode::Speculative); }},
      {"MR", [](Function &F) { runMorelRenvoise(F); }},
      {"BCM", [](Function &F) { runPre(F, PreStrategy::Busy); }},
      {"ALCM", [](Function &F) { runPre(F, PreStrategy::AlmostLazy); }},
      {"LCM", [](Function &F) { runPre(F, PreStrategy::Lazy); }},
  };
}

inline void printHeading(const char *Id, const char *Title) {
  std::printf("\n=== %s: %s ===\n\n", Id, Title);
}

inline void printTable(const Table &T) {
  std::fputs(T.render().c_str(), stdout);
}

} // namespace lcm

#endif // LCM_BENCH_BENCH_COMMON_H
