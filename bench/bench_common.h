//===- bench/bench_common.h - Shared helpers for the experiment harness --===//
//
// Part of the lcm project: a reproduction of "Lazy Code Motion"
// (Knoop, Ruething, Steffen; PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Besides the corpus/strategy helpers, this header gives every bench
// binary a machine-readable `--json` mode (schema "lcm-bench-v1"):
//
//   table1_computations --json=out.json     # human tables + JSON file
//   table1_computations --json              # JSON appended to stdout
//
// benchInit() strips the flag before google-benchmark parses argv; the
// printHeading/printTable calls the experiment bodies already make then
// record every section and table into a JSON document that benchFinish()
// writes out.  In JSON mode the mains skip the google-benchmark timing
// loops, so the CI bench-smoke job stays fast.  See docs/OBSERVABILITY.md.
//
//===----------------------------------------------------------------------===//

#ifndef LCM_BENCH_BENCH_COMMON_H
#define LCM_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baseline/GlobalCse.h"
#include "baseline/Licm.h"
#include "baseline/MorelRenvoise.h"
#include "core/Lcm.h"
#include "core/LocalCse.h"
#include "metrics/Compare.h"
#include "support/Json.h"
#include "support/Table.h"
#include "workload/Corpus.h"

namespace lcm {

/// Returns the default corpus with the paper's LCSE precondition applied.
inline std::vector<CorpusEntry> experimentCorpus() {
  std::vector<CorpusEntry> Corpus = makeDefaultCorpus();
  for (CorpusEntry &Entry : Corpus) {
    auto Raw = Entry.Make;
    Entry.Make = [Raw] {
      Function Fn = Raw();
      runLocalCse(Fn);
      return Fn;
    };
  }
  return Corpus;
}

/// The strategies the table experiments sweep (name -> transform).
inline std::vector<std::pair<std::string, TransformFn>>
allStrategies() {
  return {
      {"none", [](Function &) {}},
      {"CSE", [](Function &F) { runGlobalCse(F); }},
      {"LICM-safe",
       [](Function &F) { runLicm(F, LicmMode::SafeOnly); }},
      {"LICM-spec",
       [](Function &F) { runLicm(F, LicmMode::Speculative); }},
      {"MR", [](Function &F) { runMorelRenvoise(F); }},
      {"BCM", [](Function &F) { runPre(F, PreStrategy::Busy); }},
      {"ALCM", [](Function &F) { runPre(F, PreStrategy::AlmostLazy); }},
      {"LCM", [](Function &F) { runPre(F, PreStrategy::Lazy); }},
  };
}

//===----------------------------------------------------------------------===//
// --json mode
//===----------------------------------------------------------------------===//

struct BenchJsonState {
  bool Enabled = false;
  std::string Path; ///< Output file; empty means stdout.
  std::string BenchName;
  json::Value Sections = json::Value::object();
  bool SectionOpen = false;
  std::string SectionId;
  json::Value Section = json::Value::object();
};

inline BenchJsonState &benchJsonState() {
  static BenchJsonState S;
  return S;
}

inline bool benchJsonEnabled() { return benchJsonState().Enabled; }

/// Strips `--json[=path]` out of argv (google-benchmark rejects flags it
/// does not know) and primes the recorder.  Call first in main().
inline void benchInit(int *Argc, char **Argv, const char *BenchName) {
  BenchJsonState &S = benchJsonState();
  S.BenchName = BenchName;
  int Out = 1;
  for (int I = 1; I != *Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0) {
      S.Enabled = true;
      continue;
    }
    if (std::strncmp(Argv[I], "--json=", 7) == 0) {
      S.Enabled = true;
      S.Path = Argv[I] + 7;
      continue;
    }
    Argv[Out++] = Argv[I];
  }
  *Argc = Out;
}

inline void benchCommitSection() {
  BenchJsonState &S = benchJsonState();
  if (!S.SectionOpen)
    return;
  S.Sections.set(S.SectionId, std::move(S.Section));
  S.Section = json::Value::object();
  S.SectionOpen = false;
}

/// Records one scalar under the current section's "metrics" object.
inline void benchRecordMetric(const std::string &Key, json::Value V) {
  BenchJsonState &S = benchJsonState();
  if (!S.Enabled)
    return;
  if (!S.SectionOpen) {
    S.SectionOpen = true;
    S.SectionId = "global";
    S.Section = json::Value::object();
  }
  json::Value Metrics = json::Value::object();
  if (const json::Value *Existing = S.Section.find("metrics"))
    Metrics = *Existing;
  Metrics.set(Key, std::move(V));
  S.Section.set("metrics", std::move(Metrics));
}

inline void benchRecordMetric(const std::string &Key, uint64_t V) {
  benchRecordMetric(Key, json::Value::number(V));
}
inline void benchRecordMetric(const std::string &Key, double V) {
  benchRecordMetric(Key, json::Value::number(V));
}
inline void benchRecordMetric(const std::string &Key, bool V) {
  benchRecordMetric(Key, json::Value::boolean(V));
}

/// Renders a table cell as a typed JSON value: integers and decimals keep
/// their numeric kind, everything else stays a string.
inline json::Value benchCellValue(const std::string &Cell) {
  if (Cell.empty())
    return json::Value::str(Cell);
  char *End = nullptr;
  errno = 0;
  long long I = std::strtoll(Cell.c_str(), &End, 10);
  if (errno == 0 && End && *End == '\0')
    return json::Value::number(int64_t(I));
  errno = 0;
  double D = std::strtod(Cell.c_str(), &End);
  if (errno == 0 && End && *End == '\0')
    return json::Value::number(D);
  return json::Value::str(Cell);
}

/// Writes the collected document; returns a process exit code.  No-op
/// (returns 0) when --json was not requested.
inline int benchFinish() {
  BenchJsonState &S = benchJsonState();
  if (!S.Enabled)
    return 0;
  benchCommitSection();
  json::Value Root = json::Value::object();
  Root.set("schema", json::Value::str("lcm-bench-v1"))
      .set("bench", json::Value::str(S.BenchName))
      .set("sections", std::move(S.Sections));
  if (S.Path.empty()) {
    std::string Text = Root.dump();
    std::fputs(Text.c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  if (!json::writeFile(S.Path, Root)) {
    std::fprintf(stderr, "error: cannot write %s\n", S.Path.c_str());
    return 1;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Output helpers (stdout + JSON recorder)
//===----------------------------------------------------------------------===//

inline void printHeading(const char *Id, const char *Title) {
  std::printf("\n=== %s: %s ===\n\n", Id, Title);
  BenchJsonState &S = benchJsonState();
  if (!S.Enabled)
    return;
  benchCommitSection();
  S.SectionOpen = true;
  S.SectionId = Id;
  S.Section = json::Value::object();
  S.Section.set("title", json::Value::str(Title));
}

inline void printTable(const Table &T) {
  std::fputs(T.render().c_str(), stdout);
  BenchJsonState &S = benchJsonState();
  if (!S.Enabled)
    return;
  if (!S.SectionOpen) {
    S.SectionOpen = true;
    S.SectionId = "global";
    S.Section = json::Value::object();
  }
  json::Value Rows = json::Value::array();
  for (const std::vector<std::string> &Row : T.rows()) {
    json::Value O = json::Value::object();
    for (size_t C = 0; C != Row.size() && C != T.header().size(); ++C)
      O.set(T.header()[C], benchCellValue(Row[C]));
    Rows.push(std::move(O));
  }
  json::Value TableObj = json::Value::object();
  json::Value Columns = json::Value::array();
  for (const std::string &H : T.header())
    Columns.push(json::Value::str(H));
  TableObj.set("columns", std::move(Columns));
  TableObj.set("rows", std::move(Rows));

  json::Value Tables = json::Value::array();
  if (const json::Value *Existing = S.Section.find("tables"))
    Tables = *Existing;
  Tables.push(std::move(TableObj));
  S.Section.set("tables", std::move(Tables));
}

} // namespace lcm

#endif // LCM_BENCH_BENCH_COMMON_H
