//===- bench/table7_strength_reduction.cpp - LSR extension (T7) ----------===//
//
// Experiment T7 (see EXPERIMENTS.md): the paper's companion extension
// ("Lazy Strength Reduction"), realized as classic loop strength reduction
// on this substrate.  Over synthetic induction-heavy loops we report
// dynamic multiplications before/after, the additions that replaced them,
// and the combination with LCM.  Expected shape: multiplications drop from
// per-iteration to per-loop-entry (O(N*M) -> O(N)); the replacement cost is
// cheap additions, one per iteration plus one initialization per loop
// entry, so the total evaluation count may rise slightly while every
// multiplication disappears from the hot path.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "ext/StrengthReduction.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "bench_common.h"
#include "metrics/Cost.h"

using namespace lcm;

namespace {

/// Builds an induction-heavy loop nest: for i in 0..N: for j in 0..M:
/// consume i*Scale, j*Stride, and i*w (invariant-variable multiplier).
Function makeInductionWorkload(int64_t N, int64_t M) {
  std::string Src = R"(
block b0
  i = 0
  goto oh
block oh
  ci = i < )" + std::to_string(N) +
                    R"(
  if ci then ob else d
block ob
  x = i * 8
  y = i * w
  j = 0
  goto ih
block ih
  cj = j < )" + std::to_string(M) +
                    R"(
  if cj then ib else oe
block ib
  z = j * 24
  s = s + z
  j = j + 1
  goto ih
block oe
  s = s + x
  s = s + y
  i = i + 1
  goto oh
block d
  exit
)";
  ParseResult R = parseFunction(Src);
  assert(R.Ok && "workload must parse");
  return std::move(R.Fn);
}

struct MulCount {
  uint64_t Muls = 0;
  uint64_t Adds = 0;
  uint64_t Total = 0;
};

MulCount countOps(const Function &Fn) {
  FirstSuccessorOracle Oracle;
  Interpreter::Options Opts;
  std::vector<int64_t> Inputs(Fn.numVars(), 0);
  if (Fn.findVar("w") != InvalidVar)
    Inputs[Fn.findVar("w")] = 5;
  InterpResult R = Interpreter::run(Fn, Inputs, Oracle, Opts);
  MulCount C;
  C.Total = R.TotalEvals;
  for (ExprId E = 0; E != Fn.exprs().size(); ++E) {
    if (Fn.exprs().expr(E).Op == Opcode::Mul)
      C.Muls += R.EvalsPerExpr[E];
    if (Fn.exprs().expr(E).Op == Opcode::Add)
      C.Adds += R.EvalsPerExpr[E];
  }
  return C;
}

void runTable7() {
  printHeading("T7", "strength reduction of induction multiplications");

  Table T({"workload", "variant", "dyn muls", "dyn adds", "dyn evals",
           "candidates"});
  uint64_t ShapeViolations = 0;
  for (auto [N, M] : std::vector<std::pair<int64_t, int64_t>>{
           {4, 4}, {16, 8}, {64, 16}}) {
    std::string Name =
        "nest " + std::to_string(N) + "x" + std::to_string(M);
    Function Original = makeInductionWorkload(N, M);
    MulCount Before = countOps(Original);
    T.row().add(Name).add("original").add(Before.Muls).add(Before.Adds)
        .add(Before.Total).add("");

    Function Reduced = Original;
    StrengthReductionReport R = runStrengthReduction(Reduced);
    MulCount After = countOps(Reduced);
    T.row().add(Name).add("LSR").add(After.Muls).add(After.Adds)
        .add(After.Total).add(R.CandidatesReduced);

    Function Both = Original;
    runStrengthReduction(Both);
    runPre(Both, PreStrategy::Lazy);
    MulCount Combined = countOps(Both);
    T.row().add(Name).add("LSR+LCM").add(Combined.Muls).add(Combined.Adds)
        .add(Combined.Total).add(R.CandidatesReduced);

    ShapeViolations += After.Muls >= Before.Muls;
    ShapeViolations += Combined.Total > After.Total;
    // Each outer iteration re-enters the inner loop: j*24 re-initialized
    // per entry; i-candidates once.  Multiplications must now be O(N), not
    // O(N*M).
    ShapeViolations += After.Muls > uint64_t(3 * N + 3);
  }
  printTable(T);
  std::printf("\nshape check (muls collapse from per-iteration to "
              "per-loop-entry; LCM never pessimizes on top): %s (%llu "
              "violations)\n",
              ShapeViolations == 0 ? "HOLDS" : "VIOLATED",
              (unsigned long long)ShapeViolations);
}

void BM_StrengthReduction(benchmark::State &State) {
  Function Base = makeInductionWorkload(16, 8);
  for (auto _ : State) {
    Function Fn = Base;
    StrengthReductionReport R = runStrengthReduction(Fn);
    benchmark::DoNotOptimize(R.CandidatesReduced);
  }
}
BENCHMARK(BM_StrengthReduction);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table7_strength_reduction");
  runTable7();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
