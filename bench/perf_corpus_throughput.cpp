//===- bench/perf_corpus_throughput.cpp - Parallel driver throughput ------===//
//
// Companion to the zero-allocation dataflow engine: functions/second of the
// full verified pipeline (lcse,lcm,cleanup) over a generated corpus, single-
// vs multi-thread, via driver/CorpusDriver.h.  Each worker claims functions
// from a shared cursor and solves with its own thread-local FactArena, so
// scaling is bounded only by cores and memory bandwidth.  The table prints
// measured speedup per thread count plus a determinism check: every thread
// count must produce bit-identical optimized programs.
//
// NOTE: speedup is hardware-dependent — on a single-core container every
// thread count necessarily lands near 1.0x; the printed "hardware threads"
// line gives the context for the numbers.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "driver/CorpusDriver.h"
#include "ir/Printer.h"
#include "support/SimdWords.h"
#include "workload/RandomCfg.h"
#include "workload/StructuredGen.h"

using namespace lcm;

namespace {

/// A corpus heavy enough that one serial sweep takes a measurable chunk of
/// time: structured nests plus 64-block random CFGs.
std::vector<Function> makeThroughputCorpus() {
  std::vector<Function> Fns;
  for (unsigned Seed = 1; Seed <= 96; ++Seed) {
    StructuredGenOptions Opts;
    Opts.Seed = Seed;
    Opts.MaxDepth = 4;
    Opts.ControlPercent = 50;
    Opts.MaxStmtsPerSeq = 6;
    Fns.push_back(generateStructured(Opts));
  }
  for (unsigned Seed = 1; Seed <= 96; ++Seed) {
    RandomCfgOptions Opts;
    Opts.Seed = Seed;
    Opts.NumBlocks = 64;
    Fns.push_back(generateRandomCfg(Opts));
  }
  return Fns;
}

void runThroughputTable() {
  printHeading("corpus-throughput",
               "parallel pipeline driver (lcse,lcm,cleanup)");
  std::printf("hardware threads available: %u, kernel backend: %s\n\n",
              std::thread::hardware_concurrency(),
              simdwords::backendName());
  benchRecordMetric("hardware_threads",
                    uint64_t(std::thread::hardware_concurrency()));
  benchRecordMetric("simd_backend",
                    json::Value::str(simdwords::backendName()));

  PipelineParse P = parsePipeline("lcse,lcm,cleanup");
  if (!P.Ok) {
    std::fprintf(stderr, "pipeline parse failed: %s\n", P.Error.c_str());
    return;
  }
  const std::vector<Function> Pristine = makeThroughputCorpus();

  Table T({"threads", "seconds", "functions/s", "speedup", "failures"});
  double Serial = 0.0;
  std::vector<std::string> SerialOutputs;
  uint64_t DeterminismViolations = 0;

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    // Best of 3: batch wall-clock is noisy at millisecond scale.
    CorpusDriverResult Best;
    std::vector<Function> BestFns;
    for (int Rep = 0; Rep != 3; ++Rep) {
      std::vector<Function> Fns = Pristine;
      CorpusDriverOptions Opts;
      Opts.Threads = Threads;
      CorpusDriverResult R = optimizeCorpus(Fns, P.P, Opts);
      if (Rep == 0 || R.Seconds < Best.Seconds) {
        Best = R;
        BestFns = std::move(Fns);
      }
    }
    if (Threads == 1) {
      Serial = Best.Seconds;
      SerialOutputs.reserve(BestFns.size());
      for (const Function &Fn : BestFns)
        SerialOutputs.push_back(printFunction(Fn));
    } else {
      for (size_t I = 0; I != BestFns.size(); ++I)
        DeterminismViolations += printFunction(BestFns[I]) != SerialOutputs[I];
    }
    char Sec[32], Fps[32], Sp[32];
    std::snprintf(Sec, sizeof(Sec), "%.4f", Best.Seconds);
    std::snprintf(Fps, sizeof(Fps), "%.1f", Best.functionsPerSecond());
    std::snprintf(Sp, sizeof(Sp), "%.2fx",
                  Best.Seconds > 0 ? Serial / Best.Seconds : 0.0);
    T.row()
        .add(uint64_t(Threads))
        .add(Sec)
        .add(Fps)
        .add(Sp)
        .add(uint64_t(Best.NumFailed));
    // Named per-thread-count metrics so scaling curves across hosts can be
    // assembled from the JSON artifacts without parsing the table rows.
    char Key[64];
    std::snprintf(Key, sizeof(Key), "threads_%u_functions_per_second",
                  Threads);
    benchRecordMetric(Key, Best.functionsPerSecond());
  }
  printTable(T);
  benchRecordMetric("determinism_violations", DeterminismViolations);
  std::printf("\ndeterminism check (all thread counts produce identical "
              "programs): %s (%llu violations)\n",
              DeterminismViolations == 0 ? "HOLDS" : "VIOLATED",
              (unsigned long long)DeterminismViolations);
}

void BM_CorpusPipeline(benchmark::State &State) {
  PipelineParse P = parsePipeline("lcse,lcm,cleanup");
  const std::vector<Function> Pristine = makeThroughputCorpus();
  CorpusDriverOptions Opts;
  Opts.Threads = unsigned(State.range(0));
  uint64_t Functions = 0;
  for (auto _ : State) {
    std::vector<Function> Fns = Pristine;
    CorpusDriverResult R = optimizeCorpus(Fns, P.P, Opts);
    benchmark::DoNotOptimize(R.TotalChanges);
    Functions += Fns.size();
  }
  State.counters["functions/s"] =
      benchmark::Counter(double(Functions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CorpusPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "perf_corpus_throughput");
  runThroughputTable();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
