//===- bench/table8_solver_ablation.cpp - Solver strategy ablation (T8) --===//
//
// Experiment T8 (see EXPERIMENTS.md): round-robin over reverse post-order
// (the classic bit-vector iteration the paper assumes) versus a
// change-driven FIFO worklist versus the sparse arena engine (RPO-priority
// worklist over a flat fact arena).  All three reach the same fixpoint
// (worklist_test, solver_equivalence_test); this table compares block
// visits and bit-vector word operations across graph shapes and sizes.
// Expected shape: neither worklist ever visits more blocks than
// round-robin.  On reducible (structured) graphs the sparse engine's
// priority order also beats FIFO; on irreducible random graphs the two
// change-driven solvers are within a few percent of each other, and the
// sparse engine wins on wall clock through its flat arena (see T3c in
// perf_scaling).
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/RandomCfg.h"
#include "workload/StructuredGen.h"

using namespace lcm;

namespace {

std::vector<GenKill> availTransfers(const Function &Fn,
                                    const LocalProperties &LP) {
  std::vector<GenKill> T(Fn.numBlocks());
  for (BlockId B = 0; B != Fn.numBlocks(); ++B) {
    T[B].Gen = LP.comp(B);
    T[B].Kill = complement(LP.transp(B));
  }
  return T;
}

void runTable8() {
  printHeading("T8",
               "round-robin vs worklist vs sparse solver (availability)");

  Table T({"graph", "blocks", "RR visits", "RR wordOps", "WL visits",
           "WL wordOps", "SP visits", "SP wordOps"});
  uint64_t ShapeViolations = 0;
  auto addRow = [&](const char *Kind, Function Fn) {
    LocalProperties LP(Fn);
    auto Transfers = availTransfers(Fn, LP);
    BitVector Empty(LP.numExprs());
    DataflowResult RR = solveGenKill(Fn, Direction::Forward,
                                     Meet::Intersection, Transfers, Empty);
    DataflowResult WL = solveGenKillWorklist(
        Fn, Direction::Forward, Meet::Intersection, Transfers, Empty);
    DataflowResult SP = solveGenKillSparse(
        Fn, Direction::Forward, Meet::Intersection, Transfers, Empty);
    T.row()
        .add(Kind)
        .add(uint64_t(Fn.numBlocks()))
        .add(RR.Stats.NodeVisits)
        .add(RR.Stats.WordOps)
        .add(WL.Stats.NodeVisits)
        .add(WL.Stats.WordOps)
        .add(SP.Stats.NodeVisits)
        .add(SP.Stats.WordOps);
    ShapeViolations += WL.Stats.NodeVisits > RR.Stats.NodeVisits;
    ShapeViolations += SP.Stats.NodeVisits > RR.Stats.NodeVisits;
  };

  for (unsigned Depth : {4u, 6u}) {
    StructuredGenOptions Opts;
    Opts.Seed = 42;
    Opts.MaxDepth = Depth;
    Opts.ControlPercent = 50;
    Function Fn = generateStructured(Opts);
    runLocalCse(Fn);
    addRow("structured", std::move(Fn));
  }
  for (unsigned Blocks : {32u, 256u, 2048u}) {
    RandomCfgOptions Opts;
    Opts.Seed = 9;
    Opts.NumBlocks = Blocks;
    Function Fn = generateRandomCfg(Opts);
    runLocalCse(Fn);
    addRow("random", std::move(Fn));
  }
  printTable(T);
  std::printf("\nshape check (each change-driven solver visits no more "
              "blocks than round-robin): %s (%llu violations)\n",
              ShapeViolations == 0 ? "HOLDS" : "VIOLATED",
              (unsigned long long)ShapeViolations);
}

void BM_RoundRobinSolver(benchmark::State &State) {
  RandomCfgOptions Opts;
  Opts.Seed = 9;
  Opts.NumBlocks = unsigned(State.range(0));
  Function Fn = generateRandomCfg(Opts);
  LocalProperties LP(Fn);
  auto Transfers = availTransfers(Fn, LP);
  BitVector Empty(LP.numExprs());
  for (auto _ : State) {
    DataflowResult R = solveGenKill(Fn, Direction::Forward,
                                    Meet::Intersection, Transfers, Empty);
    benchmark::DoNotOptimize(R.Stats.NodeVisits);
  }
}
BENCHMARK(BM_RoundRobinSolver)->Arg(256)->Arg(2048);

void BM_WorklistSolver(benchmark::State &State) {
  RandomCfgOptions Opts;
  Opts.Seed = 9;
  Opts.NumBlocks = unsigned(State.range(0));
  Function Fn = generateRandomCfg(Opts);
  LocalProperties LP(Fn);
  auto Transfers = availTransfers(Fn, LP);
  BitVector Empty(LP.numExprs());
  for (auto _ : State) {
    DataflowResult R = solveGenKillWorklist(
        Fn, Direction::Forward, Meet::Intersection, Transfers, Empty);
    benchmark::DoNotOptimize(R.Stats.NodeVisits);
  }
}
BENCHMARK(BM_WorklistSolver)->Arg(256)->Arg(2048);

void BM_SparseSolver(benchmark::State &State) {
  RandomCfgOptions Opts;
  Opts.Seed = 9;
  Opts.NumBlocks = unsigned(State.range(0));
  Function Fn = generateRandomCfg(Opts);
  LocalProperties LP(Fn);
  auto Transfers = availTransfers(Fn, LP);
  BitVector Empty(LP.numExprs());
  for (auto _ : State) {
    DataflowResult R = solveGenKillSparse(
        Fn, Direction::Forward, Meet::Intersection, Transfers, Empty);
    benchmark::DoNotOptimize(R.Stats.NodeVisits);
  }
}
BENCHMARK(BM_SparseSolver)->Arg(256)->Arg(2048);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table8_solver_ablation");
  runTable8();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
