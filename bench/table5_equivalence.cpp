//===- bench/table5_equivalence.cpp - Granularity equivalence (T5) -------===//
//
// Experiment T5 (see EXPERIMENTS.md): the paper states its equations over
// single-statement nodes; production implementations run them on basic
// blocks.  On LCSE-clean programs the two must agree.  We run block-level
// LCM and node-level LCM (same equations on the expanded graph) over a
// large generated corpus, execute both on seeded paths, and count
// agreements on dynamic evaluation counts and final state.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "core/SingleInstr.h"
#include "interp/Interpreter.h"
#include "bench_common.h"
#include "workload/RandomCfg.h"
#include "workload/StructuredGen.h"

using namespace lcm;

namespace {

InterpResult runSeeded(const Function &Fn, uint64_t Seed, size_t NumInputs,
                       uint32_t OriginalBlocks) {
  RandomOracle Oracle(Seed ^ 0x94d049bb133111ebULL);
  Interpreter::Options Opts;
  Opts.MaxOriginalBlockVisits = 3000;
  Opts.OriginalBlockCount = OriginalBlocks;
  return Interpreter::run(Fn, makeSeededInputs(Seed, NumInputs), Oracle,
                          Opts);
}

void runTable5() {
  printHeading("T5", "block-granularity vs single-statement-node LCM");

  const unsigned NumPrograms = 200;
  uint64_t Compared = 0, EvalAgree = 0, StateAgree = 0, Skipped = 0;
  uint64_t BlockBlocks = 0, NodeBlocks = 0;

  for (unsigned Index = 0; Index != NumPrograms; ++Index) {
    Function Clean = [&]() {
      if (Index % 2 == 0) {
        StructuredGenOptions Opts;
        Opts.Seed = Index + 1;
        return generateStructured(Opts);
      }
      RandomCfgOptions Opts;
      Opts.Seed = Index + 1;
      Opts.NumBlocks = 6 + Index % 14;
      return generateRandomCfg(Opts);
    }();
    runLocalCse(Clean);

    Function BlockLevel = Clean;
    runPre(BlockLevel, PreStrategy::Lazy);
    Function NodeLevel = expandToSingleInstructionNodes(Clean);
    runPre(NodeLevel, PreStrategy::Lazy);
    BlockBlocks += BlockLevel.numBlocks();
    NodeBlocks += NodeLevel.numBlocks();

    for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
      InterpResult A = runSeeded(BlockLevel, Seed, Clean.numVars(),
                                 uint32_t(Clean.numBlocks()));
      InterpResult B = runSeeded(NodeLevel, Seed, Clean.numVars(),
                                 uint32_t(NodeLevel.numBlocks()));
      if (!A.ReachedExit || !B.ReachedExit) {
        ++Skipped;
        continue;
      }
      ++Compared;
      EvalAgree += A.TotalEvals == B.TotalEvals;
      bool Same = true;
      for (size_t V = 0; V != Clean.numVars(); ++V)
        Same &= A.Vars[V] == B.Vars[V];
      StateAgree += Same;
    }
  }

  Table T({"metric", "value"});
  T.row().add("programs").add(uint64_t(NumPrograms));
  T.row().add("comparable runs (both reached exit)").add(Compared);
  T.row().add("runs truncated by budget (skipped)").add(Skipped);
  T.row().add("dynamic-eval agreement").add(EvalAgree);
  T.row().add("final-state agreement").add(StateAgree);
  T.row().add("avg blocks (block-level, after)").add(
      double(BlockBlocks) / NumPrograms, 1);
  T.row().add("avg nodes (node-level, after)").add(
      double(NodeBlocks) / NumPrograms, 1);
  printTable(T);
  std::printf("\nshape check (agreement == comparable runs): %s\n",
              (EvalAgree == Compared && StateAgree == Compared)
                  ? "HOLDS"
                  : "VIOLATED");
}

void BM_NodeGranularityPipeline(benchmark::State &State) {
  StructuredGenOptions Opts;
  Opts.Seed = 11;
  Function Fn = generateStructured(Opts);
  runLocalCse(Fn);
  for (auto _ : State) {
    Function X = expandToSingleInstructionNodes(Fn);
    PreRunResult R = runPre(X, PreStrategy::Lazy);
    benchmark::DoNotOptimize(R.Placement.numDeletions());
  }
}
BENCHMARK(BM_NodeGranularityPipeline);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table5_equivalence");
  runTable5();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
