//===- bench/perf_hotpath.cpp - Zero-copy hot-path throughput -------------===//
//
// Companion to the allocation-free request path: measures the three
// byte-bound stages the serving hot path is made of —
//
//   parse:  text -> Function       (ir/Parser.h, parseFunctionInto)
//   print:  Function -> text       (ir/Printer.h, append-into-buffer form)
//   hash:   Function -> cache key  (cache/ContentHash.h, streaming form)
//
// in MB/s over the experiment corpus, plus the number that motivates the
// design: heap allocations per steady-state parse->optimize->print
// iteration once every reusable buffer has reached its high-water
// capacity.  Linked against lcm_alloc_hook, so the allocation counts are
// exact (see support/AllocHook.h); under sanitizer builds the hook is
// inert and the counts report as unmeasured.
//
// The corpus sweep is repeated a fixed number of times, so `--json` mode
// (the CI bench-smoke artifact) stays fast and deterministic in shape.
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "cache/ContentHash.h"
#include "core/Lcm.h"
#include "core/LocalCse.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/AllocHook.h"
#include "support/SimdWords.h"

using namespace lcm;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

struct HotpathInputs {
  std::vector<std::string> Texts; ///< Canonical IR per corpus program.
  std::vector<Function> Fns;      ///< The same programs, parsed.
  size_t TotalBytes = 0;          ///< Sum of text sizes (one sweep).
};

HotpathInputs makeInputs() {
  HotpathInputs In;
  for (const CorpusEntry &Entry : experimentCorpus()) {
    Function Fn = Entry.Make();
    In.Texts.push_back(printFunction(Fn));
    In.TotalBytes += In.Texts.back().size();
    In.Fns.push_back(std::move(Fn));
  }
  return In;
}

double mbPerSecond(size_t Bytes, double Seconds) {
  return Seconds > 0 ? double(Bytes) / Seconds / 1e6 : 0.0;
}

/// One full request-shaped iteration: parse the text, optimize, print the
/// result into \p Out.  Exactly the loop the allocation gate pins.
void requestIteration(const std::string &Text, const IRLimits &Limits,
                      ParserScratch &Scratch, ParseResult &Ir,
                      PreRunResult &R, std::string &Out) {
  parseFunctionInto(Text, Limits, Scratch, Ir);
  runLocalCse(Ir.Fn);
  runPreInto(Ir.Fn, PreStrategy::Lazy, SolverStrategy::Sparse, R);
  Out.clear();
  printFunction(Ir.Fn, Out);
}

void runThroughput(const HotpathInputs &In) {
  printHeading("hotpath-throughput",
               "parse / print / hash throughput (experiment corpus)");

  const unsigned Reps = 256;
  const IRLimits Limits;
  Table T({"stage", "bytes_per_sweep", "sweeps", "seconds", "mb_per_s"});

  // Parse: the single-pass string_view lexer into recycled storage.
  {
    ParserScratch Scratch;
    ParseResult Ir;
    parseFunctionInto(In.Texts.front(), Limits, Scratch, Ir); // warm
    const auto Start = Clock::now();
    for (unsigned R = 0; R != Reps; ++R)
      for (const std::string &Text : In.Texts)
        parseFunctionInto(Text, Limits, Scratch, Ir);
    const double S = secondsSince(Start);
    const double Mb = mbPerSecond(In.TotalBytes * Reps, S);
    T.row().add("parse").add(uint64_t(In.TotalBytes)).add(uint64_t(Reps))
        .add(S, 4).add(Mb, 1);
    benchRecordMetric("parse_mb_per_second", Mb);
  }

  // Print: append into a caller buffer that keeps its capacity.
  {
    std::string Out;
    const auto Start = Clock::now();
    for (unsigned R = 0; R != Reps; ++R)
      for (const Function &Fn : In.Fns) {
        Out.clear();
        printFunction(Fn, Out);
      }
    const double S = secondsSince(Start);
    const double Mb = mbPerSecond(In.TotalBytes * Reps, S);
    T.row().add("print").add(uint64_t(In.TotalBytes)).add(uint64_t(Reps))
        .add(S, 4).add(Mb, 1);
    benchRecordMetric("print_mb_per_second", Mb);
  }

  // Hash: the streaming cache key (print straight into the hasher).
  {
    cache::PipelineFingerprint FP;
    FP.Pipeline = "lcse,lcm,cleanup";
    uint64_t Fold = 0;
    const auto Start = Clock::now();
    for (unsigned R = 0; R != Reps; ++R)
      for (const Function &Fn : In.Fns)
        Fold += cache::requestKey(Fn, FP).Lo;
    const double S = secondsSince(Start);
    const double Mb = mbPerSecond(In.TotalBytes * Reps, S);
    T.row().add("hash").add(uint64_t(In.TotalBytes)).add(uint64_t(Reps))
        .add(S, 4).add(Mb, 1);
    benchRecordMetric("hash_mb_per_second", Mb);
    if (Fold == 0x5eed) // Defeat over-eager optimizers; never true.
      std::printf("#");
  }

  printTable(T);
}

/// Scalar-reference vs dispatched-backend throughput for each word kernel
/// over 64-word (4096-bit) rows — wide enough that the SIMD dispatch
/// threshold is comfortably crossed and the loops, not the calls, dominate.
/// Rows live in one contiguous buffer like a BitMatrix, so this measures
/// the same access pattern the sparse solver produces.
void runKernels() {
  printHeading("hotpath-kernels",
               "word-kernel throughput, scalar reference vs dispatched "
               "SIMD backend");

  const char *Backend = simdwords::backendName();
  std::printf("dispatched backend: %s%s\n", Backend,
              simdwords::forcedScalar() ? " (LCM_FORCE_SCALAR)" : "");
  benchRecordMetric("simd_backend", json::Value::str(Backend));
  benchRecordMetric("simd_forced_scalar", simdwords::forcedScalar());

  constexpr size_t Words = 64;   // 4096-bit universe
  constexpr size_t Rows = 256;
  constexpr size_t MeetIn = 4;   // fan-in for the fused meet kernel
  constexpr unsigned Reps = 1500;

  // Deterministic pseudo-random row contents (xorshift64*).
  std::vector<uint64_t> Buf((Rows + MeetIn + 4) * Words);
  uint64_t Seed = 0x9e3779b97f4a7c15ULL;
  for (uint64_t &W : Buf) {
    Seed ^= Seed >> 12;
    Seed ^= Seed << 25;
    Seed ^= Seed >> 27;
    W = Seed * 0x2545F4914F6CDD1DULL;
  }
  uint64_t *RowBase = Buf.data();
  uint64_t *Gen = RowBase + Rows * Words;
  uint64_t *Kill = Gen + Words;
  uint64_t *Src = Kill + Words;
  uint64_t *Scratch = Src + Words;
  const uint64_t *Inputs[MeetIn];
  for (size_t J = 0; J != MeetIn; ++J)
    Inputs[J] = RowBase + J * Words;

  struct KernelCase {
    const char *Name;
    // Runs the kernel once over every row with the given table; returns a
    // fold so the work cannot be optimized away.
    uint64_t (*Run)(const simdwords::Kernels &, uint64_t *, uint64_t *,
                    const uint64_t *, const uint64_t *, const uint64_t *,
                    uint64_t *, const uint64_t *const *);
  };
  const KernelCase Cases[] = {
      {"orInto",
       [](const simdwords::Kernels &K, uint64_t *RowBase, uint64_t *,
          const uint64_t *, const uint64_t *, const uint64_t *Src,
          uint64_t *, const uint64_t *const *) {
         for (size_t R = 0; R != Rows; ++R)
           K.orInto(RowBase + R * Words, Src, Words);
         return RowBase[0];
       }},
      {"andInto",
       [](const simdwords::Kernels &K, uint64_t *RowBase, uint64_t *,
          const uint64_t *, const uint64_t *, const uint64_t *Src,
          uint64_t *, const uint64_t *const *) {
         for (size_t R = 0; R != Rows; ++R)
           K.andInto(RowBase + R * Words, Src, Words);
         return RowBase[0];
       }},
      {"andNotInto",
       [](const simdwords::Kernels &K, uint64_t *RowBase, uint64_t *,
          const uint64_t *, const uint64_t *, const uint64_t *Src,
          uint64_t *, const uint64_t *const *) {
         for (size_t R = 0; R != Rows; ++R)
           K.andNotInto(RowBase + R * Words, Src, Words);
         return RowBase[0];
       }},
      {"equal",
       [](const simdwords::Kernels &K, uint64_t *RowBase, uint64_t *,
          const uint64_t *, const uint64_t *, const uint64_t *Src,
          uint64_t *, const uint64_t *const *) {
         uint64_t Fold = 0;
         for (size_t R = 0; R != Rows; ++R)
           Fold += K.equal(RowBase + R * Words, Src, Words);
         return Fold;
       }},
      {"transferInto",
       [](const simdwords::Kernels &K, uint64_t *RowBase, uint64_t *,
          const uint64_t *Gen, const uint64_t *Kill, const uint64_t *Src,
          uint64_t *, const uint64_t *const *) {
         for (size_t R = 0; R != Rows; ++R)
           K.transferInto(RowBase + R * Words, Src, Gen, Kill, Words);
         return RowBase[0];
       }},
      {"transferChanged",
       [](const simdwords::Kernels &K, uint64_t *RowBase, uint64_t *,
          const uint64_t *Gen, const uint64_t *Kill, const uint64_t *Src,
          uint64_t *, const uint64_t *const *) {
         uint64_t Fold = 0;
         for (size_t R = 0; R != Rows; ++R)
           Fold += K.transferChanged(RowBase + R * Words, Src, Gen, Kill,
                                     Words);
         return Fold;
       }},
      {"meetTransferChanged",
       [](const simdwords::Kernels &K, uint64_t *RowBase, uint64_t *Scratch,
          const uint64_t *Gen, const uint64_t *Kill, const uint64_t *,
          uint64_t *, const uint64_t *const *Inputs) {
         uint64_t Fold = 0;
         for (size_t R = 0; R != Rows; ++R)
           Fold += K.meetTransferChanged(Scratch, RowBase + R * Words,
                                         Inputs, MeetIn, (R & 1) != 0, Gen,
                                         Kill, Words);
         return Fold;
       }},
  };

  Table T({"kernel", "scalar_mb_per_s", "simd_mb_per_s", "speedup"});
  uint64_t Sink = 0;
  double LogSum = 0.0;
  size_t NumCases = 0;
  for (const KernelCase &C : Cases) {
    double Mb[2] = {0, 0};
    const simdwords::Kernels *Tables[2] = {&simdwords::scalarKernels(),
                                           &simdwords::kernels()};
    for (int V = 0; V != 2; ++V) {
      Sink += C.Run(*Tables[V], RowBase, Scratch, Gen, Kill, Src, nullptr,
                    Inputs); // warm
      const auto Start = Clock::now();
      for (unsigned R = 0; R != Reps; ++R)
        Sink += C.Run(*Tables[V], RowBase, Scratch, Gen, Kill, Src, nullptr,
                      Inputs);
      const double S = secondsSince(Start);
      Mb[V] = mbPerSecond(uint64_t(Reps) * Rows * Words * 8, S);
    }
    const double Speedup = Mb[0] > 0 ? Mb[1] / Mb[0] : 0.0;
    T.row().add(C.Name).add(Mb[0], 1).add(Mb[1], 1).add(Speedup, 2);
    std::string Prefix = std::string("kernel_") + C.Name;
    benchRecordMetric((Prefix + "_scalar_mb_per_second").c_str(), Mb[0]);
    benchRecordMetric((Prefix + "_simd_mb_per_second").c_str(), Mb[1]);
    if (Speedup > 0) {
      LogSum += std::log(Speedup);
      ++NumCases;
    }
  }
  printTable(T);
  const double Geomean = NumCases ? std::exp(LogSum / NumCases) : 0.0;
  std::printf("geomean speedup (simd/scalar): %.2fx\n", Geomean);
  benchRecordMetric("kernel_speedup_geomean", Geomean);
  if (Sink == 0x5eed) // Defeat over-eager optimizers; never true.
    std::printf("#");
}

void runAllocations(const HotpathInputs &In) {
  printHeading("hotpath-allocations",
               "steady-state heap allocations per request iteration");

  const IRLimits Limits;
  ParserScratch Scratch;
  ParseResult Ir;
  PreRunResult R;
  std::string Out;

  // Warm-up: let every arena, scratch vector, and string reach its
  // high-water capacity.
  const unsigned Warmup = 32, Measured = 8;
  for (unsigned I = 0; I != Warmup; ++I)
    for (const std::string &Text : In.Texts)
      requestIteration(Text, Limits, Scratch, Ir, R, Out);

  const uint64_t Before = alloccount::allocations();
  for (unsigned I = 0; I != Measured; ++I)
    for (const std::string &Text : In.Texts)
      requestIteration(Text, Limits, Scratch, Ir, R, Out);
  const uint64_t Delta = alloccount::allocations() - Before;

  Table T({"hook_active", "warmup_iters", "measured_iters", "allocations"});
  T.row().add(alloccount::active() ? "yes" : "no").add(uint64_t(Warmup))
      .add(uint64_t(Measured)).add(Delta);
  printTable(T);

  benchRecordMetric("alloc_hook_active", alloccount::active());
  benchRecordMetric("steady_allocations", Delta);
  if (alloccount::active() && Delta != 0)
    std::printf("WARNING: steady state allocated %llu times\n",
                (unsigned long long)Delta);
}

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "perf_hotpath");
  HotpathInputs In = makeInputs();
  std::printf("corpus programs: %zu, bytes per sweep: %zu\n",
              In.Texts.size(), In.TotalBytes);
  runThroughput(In);
  runKernels();
  runAllocations(In);
  return benchFinish();
}
