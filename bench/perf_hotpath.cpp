//===- bench/perf_hotpath.cpp - Zero-copy hot-path throughput -------------===//
//
// Companion to the allocation-free request path: measures the three
// byte-bound stages the serving hot path is made of —
//
//   parse:  text -> Function       (ir/Parser.h, parseFunctionInto)
//   print:  Function -> text       (ir/Printer.h, append-into-buffer form)
//   hash:   Function -> cache key  (cache/ContentHash.h, streaming form)
//
// in MB/s over the experiment corpus, plus the number that motivates the
// design: heap allocations per steady-state parse->optimize->print
// iteration once every reusable buffer has reached its high-water
// capacity.  Linked against lcm_alloc_hook, so the allocation counts are
// exact (see support/AllocHook.h); under sanitizer builds the hook is
// inert and the counts report as unmeasured.
//
// The corpus sweep is repeated a fixed number of times, so `--json` mode
// (the CI bench-smoke artifact) stays fast and deterministic in shape.
//
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "cache/ContentHash.h"
#include "core/Lcm.h"
#include "core/LocalCse.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/AllocHook.h"

using namespace lcm;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

struct HotpathInputs {
  std::vector<std::string> Texts; ///< Canonical IR per corpus program.
  std::vector<Function> Fns;      ///< The same programs, parsed.
  size_t TotalBytes = 0;          ///< Sum of text sizes (one sweep).
};

HotpathInputs makeInputs() {
  HotpathInputs In;
  for (const CorpusEntry &Entry : experimentCorpus()) {
    Function Fn = Entry.Make();
    In.Texts.push_back(printFunction(Fn));
    In.TotalBytes += In.Texts.back().size();
    In.Fns.push_back(std::move(Fn));
  }
  return In;
}

double mbPerSecond(size_t Bytes, double Seconds) {
  return Seconds > 0 ? double(Bytes) / Seconds / 1e6 : 0.0;
}

/// One full request-shaped iteration: parse the text, optimize, print the
/// result into \p Out.  Exactly the loop the allocation gate pins.
void requestIteration(const std::string &Text, const IRLimits &Limits,
                      ParserScratch &Scratch, ParseResult &Ir,
                      PreRunResult &R, std::string &Out) {
  parseFunctionInto(Text, Limits, Scratch, Ir);
  runLocalCse(Ir.Fn);
  runPreInto(Ir.Fn, PreStrategy::Lazy, SolverStrategy::Sparse, R);
  Out.clear();
  printFunction(Ir.Fn, Out);
}

void runThroughput(const HotpathInputs &In) {
  printHeading("hotpath-throughput",
               "parse / print / hash throughput (experiment corpus)");

  const unsigned Reps = 256;
  const IRLimits Limits;
  Table T({"stage", "bytes_per_sweep", "sweeps", "seconds", "mb_per_s"});

  // Parse: the single-pass string_view lexer into recycled storage.
  {
    ParserScratch Scratch;
    ParseResult Ir;
    parseFunctionInto(In.Texts.front(), Limits, Scratch, Ir); // warm
    const auto Start = Clock::now();
    for (unsigned R = 0; R != Reps; ++R)
      for (const std::string &Text : In.Texts)
        parseFunctionInto(Text, Limits, Scratch, Ir);
    const double S = secondsSince(Start);
    const double Mb = mbPerSecond(In.TotalBytes * Reps, S);
    T.row().add("parse").add(uint64_t(In.TotalBytes)).add(uint64_t(Reps))
        .add(S, 4).add(Mb, 1);
    benchRecordMetric("parse_mb_per_second", Mb);
  }

  // Print: append into a caller buffer that keeps its capacity.
  {
    std::string Out;
    const auto Start = Clock::now();
    for (unsigned R = 0; R != Reps; ++R)
      for (const Function &Fn : In.Fns) {
        Out.clear();
        printFunction(Fn, Out);
      }
    const double S = secondsSince(Start);
    const double Mb = mbPerSecond(In.TotalBytes * Reps, S);
    T.row().add("print").add(uint64_t(In.TotalBytes)).add(uint64_t(Reps))
        .add(S, 4).add(Mb, 1);
    benchRecordMetric("print_mb_per_second", Mb);
  }

  // Hash: the streaming cache key (print straight into the hasher).
  {
    cache::PipelineFingerprint FP;
    FP.Pipeline = "lcse,lcm,cleanup";
    uint64_t Fold = 0;
    const auto Start = Clock::now();
    for (unsigned R = 0; R != Reps; ++R)
      for (const Function &Fn : In.Fns)
        Fold += cache::requestKey(Fn, FP).Lo;
    const double S = secondsSince(Start);
    const double Mb = mbPerSecond(In.TotalBytes * Reps, S);
    T.row().add("hash").add(uint64_t(In.TotalBytes)).add(uint64_t(Reps))
        .add(S, 4).add(Mb, 1);
    benchRecordMetric("hash_mb_per_second", Mb);
    if (Fold == 0x5eed) // Defeat over-eager optimizers; never true.
      std::printf("#");
  }

  printTable(T);
}

void runAllocations(const HotpathInputs &In) {
  printHeading("hotpath-allocations",
               "steady-state heap allocations per request iteration");

  const IRLimits Limits;
  ParserScratch Scratch;
  ParseResult Ir;
  PreRunResult R;
  std::string Out;

  // Warm-up: let every arena, scratch vector, and string reach its
  // high-water capacity.
  const unsigned Warmup = 32, Measured = 8;
  for (unsigned I = 0; I != Warmup; ++I)
    for (const std::string &Text : In.Texts)
      requestIteration(Text, Limits, Scratch, Ir, R, Out);

  const uint64_t Before = alloccount::allocations();
  for (unsigned I = 0; I != Measured; ++I)
    for (const std::string &Text : In.Texts)
      requestIteration(Text, Limits, Scratch, Ir, R, Out);
  const uint64_t Delta = alloccount::allocations() - Before;

  Table T({"hook_active", "warmup_iters", "measured_iters", "allocations"});
  T.row().add(alloccount::active() ? "yes" : "no").add(uint64_t(Warmup))
      .add(uint64_t(Measured)).add(Delta);
  printTable(T);

  benchRecordMetric("alloc_hook_active", alloccount::active());
  benchRecordMetric("steady_allocations", Delta);
  if (alloccount::active() && Delta != 0)
    std::printf("WARNING: steady state allocated %llu times\n",
                (unsigned long long)Delta);
}

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "perf_hotpath");
  HotpathInputs In = makeInputs();
  std::printf("corpus programs: %zu, bytes per sweep: %zu\n",
              In.Texts.size(), In.TotalBytes);
  runThroughput(In);
  runAllocations(In);
  return benchFinish();
}
