//===- bench/table9_code_size.cpp - Code-size vs dynamic tradeoff (T9) ---===//
//
// Experiment T9 (see EXPERIMENTS.md): lazy code motion optimizes dynamic
// behaviour, and on joins with several unavailable predecessors it pays
// with static growth (k insertions for one deleted occurrence).  The
// code-size filter (after the authors' later "code-size sensitive PRE"
// line of work) drops exactly those expressions.  This table quantifies
// the trade: static operations and dynamic evaluations for none / LCM /
// size-filtered LCM over the corpus plus the adversarial join family.
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include <benchmark/benchmark.h>

#include "ir/Parser.h"
#include "bench_common.h"

using namespace lcm;

namespace {

void sizedLcm(Function &F) {
  CfgEdges Edges(F);
  LocalProperties LP(F);
  LazyCodeMotion Engine(F, Edges, LP);
  PrePlacement P =
      filterPlacementForCodeSize(Engine.placement(PreStrategy::Lazy));
  applyPlacement(F, Edges, P);
}

/// Join with K killing predecessors and one computing predecessor.
Function makeWideJoin(unsigned K) {
  std::string Src = "block b0\n  br p0";
  for (unsigned I = 1; I <= K; ++I)
    Src += " p" + std::to_string(I);
  Src += "\nblock p0\n  x = a + b\n  goto j\n";
  for (unsigned I = 1; I <= K; ++I)
    Src += "block p" + std::to_string(I) + "\n  a = " + std::to_string(I) +
           "\n  goto j\n";
  Src += "block j\n  y = a + b\n  goto d\nblock d\n  exit\n";
  ParseResult R = parseFunction(Src);
  assert(R.Ok && "wide join must parse");
  return std::move(R.Fn);
}

void runTable9() {
  printHeading("T9", "static code size vs dynamic optimality");

  Table T({"program", "ops none", "ops LCM", "ops sized-LCM", "dyn none",
           "dyn LCM", "dyn sized-LCM"});
  uint64_t ShapeViolations = 0;

  auto addRow = [&](const std::string &Name, const Function &Original) {
    StrategyOutcome None =
        evaluateStrategy("none", Original, identityTransform());
    StrategyOutcome Lcm = evaluateStrategy(
        "LCM", Original, [](Function &F) { runPre(F, PreStrategy::Lazy); });
    StrategyOutcome Sized = evaluateStrategy("sized", Original, sizedLcm);
    T.row()
        .add(Name)
        .add(None.StaticOps)
        .add(Lcm.StaticOps)
        .add(Sized.StaticOps)
        .add(None.DynamicEvals)
        .add(Lcm.DynamicEvals)
        .add(Sized.DynamicEvals);
    ShapeViolations += Sized.StaticOps > None.StaticOps;
    ShapeViolations += Sized.DynamicEvals > None.DynamicEvals;
    ShapeViolations += Lcm.DynamicEvals > Sized.DynamicEvals;
  };

  for (unsigned K : {2u, 4u, 8u})
    addRow("wide-join k=" + std::to_string(K), makeWideJoin(K));
  for (const CorpusEntry &Entry : experimentCorpus())
    addRow(Entry.Name, Entry.Make());

  printTable(T);
  std::printf("\nshape check (sized-LCM never grows static ops and sits "
              "between none and LCM dynamically): %s (%llu violations)\n",
              ShapeViolations == 0 ? "HOLDS" : "VIOLATED",
              (unsigned long long)ShapeViolations);
}

void BM_SizeFilteredPipeline(benchmark::State &State) {
  Function Base = makeWideJoin(8);
  for (auto _ : State) {
    Function Fn = Base;
    sizedLcm(Fn);
    benchmark::DoNotOptimize(Fn.countOperations());
  }
}
BENCHMARK(BM_SizeFilteredPipeline);

} // namespace

int main(int argc, char **argv) {
  benchInit(&argc, argv, "table9_code_size");
  runTable9();
  if (benchJsonEnabled())
    return benchFinish();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
