# Empty compiler generated dependencies file for code_size_test.
# This may be replaced when dependencies are built.
