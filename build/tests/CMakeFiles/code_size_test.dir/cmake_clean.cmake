file(REMOVE_RECURSE
  "CMakeFiles/code_size_test.dir/code_size_test.cpp.o"
  "CMakeFiles/code_size_test.dir/code_size_test.cpp.o.d"
  "code_size_test"
  "code_size_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_size_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
