file(REMOVE_RECURSE
  "CMakeFiles/pathwise_test.dir/pathwise_test.cpp.o"
  "CMakeFiles/pathwise_test.dir/pathwise_test.cpp.o.d"
  "pathwise_test"
  "pathwise_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
