# Empty compiler generated dependencies file for pathwise_test.
# This may be replaced when dependencies are built.
