file(REMOVE_RECURSE
  "CMakeFiles/lcm_test.dir/lcm_test.cpp.o"
  "CMakeFiles/lcm_test.dir/lcm_test.cpp.o.d"
  "lcm_test"
  "lcm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
