file(REMOVE_RECURSE
  "CMakeFiles/worklist_test.dir/worklist_test.cpp.o"
  "CMakeFiles/worklist_test.dir/worklist_test.cpp.o.d"
  "worklist_test"
  "worklist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worklist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
