file(REMOVE_RECURSE
  "CMakeFiles/canonicalize_test.dir/canonicalize_test.cpp.o"
  "CMakeFiles/canonicalize_test.dir/canonicalize_test.cpp.o.d"
  "canonicalize_test"
  "canonicalize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canonicalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
