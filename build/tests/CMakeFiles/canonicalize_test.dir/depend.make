# Empty dependencies file for canonicalize_test.
# This may be replaced when dependencies are built.
