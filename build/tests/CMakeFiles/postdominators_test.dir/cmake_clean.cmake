file(REMOVE_RECURSE
  "CMakeFiles/postdominators_test.dir/postdominators_test.cpp.o"
  "CMakeFiles/postdominators_test.dir/postdominators_test.cpp.o.d"
  "postdominators_test"
  "postdominators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postdominators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
