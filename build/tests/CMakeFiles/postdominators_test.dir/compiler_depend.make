# Empty compiler generated dependencies file for postdominators_test.
# This may be replaced when dependencies are built.
