# Empty compiler generated dependencies file for constant_folding_test.
# This may be replaced when dependencies are built.
