file(REMOVE_RECURSE
  "CMakeFiles/constant_folding_test.dir/constant_folding_test.cpp.o"
  "CMakeFiles/constant_folding_test.dir/constant_folding_test.cpp.o.d"
  "constant_folding_test"
  "constant_folding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constant_folding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
