
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/lcm_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lcm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/lcm_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lcm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/lcm_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lcm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/lcm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lcm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lcm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
