file(REMOVE_RECURSE
  "CMakeFiles/address_gen_test.dir/address_gen_test.cpp.o"
  "CMakeFiles/address_gen_test.dir/address_gen_test.cpp.o.d"
  "address_gen_test"
  "address_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
