# Empty compiler generated dependencies file for address_gen_test.
# This may be replaced when dependencies are built.
