file(REMOVE_RECURSE
  "CMakeFiles/strength_reduction_test.dir/strength_reduction_test.cpp.o"
  "CMakeFiles/strength_reduction_test.dir/strength_reduction_test.cpp.o.d"
  "strength_reduction_test"
  "strength_reduction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strength_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
