file(REMOVE_RECURSE
  "CMakeFiles/golden_text_test.dir/golden_text_test.cpp.o"
  "CMakeFiles/golden_text_test.dir/golden_text_test.cpp.o.d"
  "golden_text_test"
  "golden_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
