# Empty compiler generated dependencies file for golden_text_test.
# This may be replaced when dependencies are built.
