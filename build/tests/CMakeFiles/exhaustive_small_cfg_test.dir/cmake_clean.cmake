file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_small_cfg_test.dir/exhaustive_small_cfg_test.cpp.o"
  "CMakeFiles/exhaustive_small_cfg_test.dir/exhaustive_small_cfg_test.cpp.o.d"
  "exhaustive_small_cfg_test"
  "exhaustive_small_cfg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_small_cfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
