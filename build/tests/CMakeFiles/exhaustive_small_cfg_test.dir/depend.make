# Empty dependencies file for exhaustive_small_cfg_test.
# This may be replaced when dependencies are built.
