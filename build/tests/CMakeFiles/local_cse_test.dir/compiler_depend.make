# Empty compiler generated dependencies file for local_cse_test.
# This may be replaced when dependencies are built.
