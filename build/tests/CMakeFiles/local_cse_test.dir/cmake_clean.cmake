file(REMOVE_RECURSE
  "CMakeFiles/local_cse_test.dir/local_cse_test.cpp.o"
  "CMakeFiles/local_cse_test.dir/local_cse_test.cpp.o.d"
  "local_cse_test"
  "local_cse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_cse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
