# Empty dependencies file for reducibility_test.
# This may be replaced when dependencies are built.
