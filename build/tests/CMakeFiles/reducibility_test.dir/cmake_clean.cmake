file(REMOVE_RECURSE
  "CMakeFiles/reducibility_test.dir/reducibility_test.cpp.o"
  "CMakeFiles/reducibility_test.dir/reducibility_test.cpp.o.d"
  "reducibility_test"
  "reducibility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reducibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
