file(REMOVE_RECURSE
  "CMakeFiles/local_properties_test.dir/local_properties_test.cpp.o"
  "CMakeFiles/local_properties_test.dir/local_properties_test.cpp.o.d"
  "local_properties_test"
  "local_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
