# Empty dependencies file for local_properties_test.
# This may be replaced when dependencies are built.
