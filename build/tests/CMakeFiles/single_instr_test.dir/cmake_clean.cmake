file(REMOVE_RECURSE
  "CMakeFiles/single_instr_test.dir/single_instr_test.cpp.o"
  "CMakeFiles/single_instr_test.dir/single_instr_test.cpp.o.d"
  "single_instr_test"
  "single_instr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_instr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
