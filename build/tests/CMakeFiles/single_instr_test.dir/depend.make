# Empty dependencies file for single_instr_test.
# This may be replaced when dependencies are built.
