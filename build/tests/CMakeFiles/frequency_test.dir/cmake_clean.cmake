file(REMOVE_RECURSE
  "CMakeFiles/frequency_test.dir/frequency_test.cpp.o"
  "CMakeFiles/frequency_test.dir/frequency_test.cpp.o.d"
  "frequency_test"
  "frequency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
