
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/Canonicalize.cpp" "src/baseline/CMakeFiles/lcm_baseline.dir/Canonicalize.cpp.o" "gcc" "src/baseline/CMakeFiles/lcm_baseline.dir/Canonicalize.cpp.o.d"
  "/root/repo/src/baseline/Cleanup.cpp" "src/baseline/CMakeFiles/lcm_baseline.dir/Cleanup.cpp.o" "gcc" "src/baseline/CMakeFiles/lcm_baseline.dir/Cleanup.cpp.o.d"
  "/root/repo/src/baseline/ConstantFolding.cpp" "src/baseline/CMakeFiles/lcm_baseline.dir/ConstantFolding.cpp.o" "gcc" "src/baseline/CMakeFiles/lcm_baseline.dir/ConstantFolding.cpp.o.d"
  "/root/repo/src/baseline/GlobalCse.cpp" "src/baseline/CMakeFiles/lcm_baseline.dir/GlobalCse.cpp.o" "gcc" "src/baseline/CMakeFiles/lcm_baseline.dir/GlobalCse.cpp.o.d"
  "/root/repo/src/baseline/Licm.cpp" "src/baseline/CMakeFiles/lcm_baseline.dir/Licm.cpp.o" "gcc" "src/baseline/CMakeFiles/lcm_baseline.dir/Licm.cpp.o.d"
  "/root/repo/src/baseline/MorelRenvoise.cpp" "src/baseline/CMakeFiles/lcm_baseline.dir/MorelRenvoise.cpp.o" "gcc" "src/baseline/CMakeFiles/lcm_baseline.dir/MorelRenvoise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lcm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lcm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/lcm_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
