file(REMOVE_RECURSE
  "liblcm_baseline.a"
)
