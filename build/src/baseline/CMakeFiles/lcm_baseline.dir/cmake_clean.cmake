file(REMOVE_RECURSE
  "CMakeFiles/lcm_baseline.dir/Canonicalize.cpp.o"
  "CMakeFiles/lcm_baseline.dir/Canonicalize.cpp.o.d"
  "CMakeFiles/lcm_baseline.dir/Cleanup.cpp.o"
  "CMakeFiles/lcm_baseline.dir/Cleanup.cpp.o.d"
  "CMakeFiles/lcm_baseline.dir/ConstantFolding.cpp.o"
  "CMakeFiles/lcm_baseline.dir/ConstantFolding.cpp.o.d"
  "CMakeFiles/lcm_baseline.dir/GlobalCse.cpp.o"
  "CMakeFiles/lcm_baseline.dir/GlobalCse.cpp.o.d"
  "CMakeFiles/lcm_baseline.dir/Licm.cpp.o"
  "CMakeFiles/lcm_baseline.dir/Licm.cpp.o.d"
  "CMakeFiles/lcm_baseline.dir/MorelRenvoise.cpp.o"
  "CMakeFiles/lcm_baseline.dir/MorelRenvoise.cpp.o.d"
  "liblcm_baseline.a"
  "liblcm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
