# Empty compiler generated dependencies file for lcm_baseline.
# This may be replaced when dependencies are built.
