file(REMOVE_RECURSE
  "CMakeFiles/lcm_ir.dir/Expr.cpp.o"
  "CMakeFiles/lcm_ir.dir/Expr.cpp.o.d"
  "CMakeFiles/lcm_ir.dir/Function.cpp.o"
  "CMakeFiles/lcm_ir.dir/Function.cpp.o.d"
  "CMakeFiles/lcm_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/lcm_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/lcm_ir.dir/Parser.cpp.o"
  "CMakeFiles/lcm_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/lcm_ir.dir/Printer.cpp.o"
  "CMakeFiles/lcm_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/lcm_ir.dir/Verifier.cpp.o"
  "CMakeFiles/lcm_ir.dir/Verifier.cpp.o.d"
  "liblcm_ir.a"
  "liblcm_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
