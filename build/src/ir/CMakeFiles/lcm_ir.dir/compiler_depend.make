# Empty compiler generated dependencies file for lcm_ir.
# This may be replaced when dependencies are built.
