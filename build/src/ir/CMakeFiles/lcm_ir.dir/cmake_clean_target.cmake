file(REMOVE_RECURSE
  "liblcm_ir.a"
)
