# Empty compiler generated dependencies file for lcm_analysis.
# This may be replaced when dependencies are built.
