file(REMOVE_RECURSE
  "liblcm_analysis.a"
)
