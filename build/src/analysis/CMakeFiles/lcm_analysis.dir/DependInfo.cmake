
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/BlockFrequency.cpp" "src/analysis/CMakeFiles/lcm_analysis.dir/BlockFrequency.cpp.o" "gcc" "src/analysis/CMakeFiles/lcm_analysis.dir/BlockFrequency.cpp.o.d"
  "/root/repo/src/analysis/ExprDataflow.cpp" "src/analysis/CMakeFiles/lcm_analysis.dir/ExprDataflow.cpp.o" "gcc" "src/analysis/CMakeFiles/lcm_analysis.dir/ExprDataflow.cpp.o.d"
  "/root/repo/src/analysis/LocalProperties.cpp" "src/analysis/CMakeFiles/lcm_analysis.dir/LocalProperties.cpp.o" "gcc" "src/analysis/CMakeFiles/lcm_analysis.dir/LocalProperties.cpp.o.d"
  "/root/repo/src/analysis/TempLiveness.cpp" "src/analysis/CMakeFiles/lcm_analysis.dir/TempLiveness.cpp.o" "gcc" "src/analysis/CMakeFiles/lcm_analysis.dir/TempLiveness.cpp.o.d"
  "/root/repo/src/analysis/VarLiveness.cpp" "src/analysis/CMakeFiles/lcm_analysis.dir/VarLiveness.cpp.o" "gcc" "src/analysis/CMakeFiles/lcm_analysis.dir/VarLiveness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/lcm_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lcm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
