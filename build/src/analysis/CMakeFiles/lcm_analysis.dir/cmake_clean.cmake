file(REMOVE_RECURSE
  "CMakeFiles/lcm_analysis.dir/BlockFrequency.cpp.o"
  "CMakeFiles/lcm_analysis.dir/BlockFrequency.cpp.o.d"
  "CMakeFiles/lcm_analysis.dir/ExprDataflow.cpp.o"
  "CMakeFiles/lcm_analysis.dir/ExprDataflow.cpp.o.d"
  "CMakeFiles/lcm_analysis.dir/LocalProperties.cpp.o"
  "CMakeFiles/lcm_analysis.dir/LocalProperties.cpp.o.d"
  "CMakeFiles/lcm_analysis.dir/TempLiveness.cpp.o"
  "CMakeFiles/lcm_analysis.dir/TempLiveness.cpp.o.d"
  "CMakeFiles/lcm_analysis.dir/VarLiveness.cpp.o"
  "CMakeFiles/lcm_analysis.dir/VarLiveness.cpp.o.d"
  "liblcm_analysis.a"
  "liblcm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
