file(REMOVE_RECURSE
  "CMakeFiles/lcm_metrics.dir/Compare.cpp.o"
  "CMakeFiles/lcm_metrics.dir/Compare.cpp.o.d"
  "CMakeFiles/lcm_metrics.dir/Cost.cpp.o"
  "CMakeFiles/lcm_metrics.dir/Cost.cpp.o.d"
  "liblcm_metrics.a"
  "liblcm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
