file(REMOVE_RECURSE
  "liblcm_metrics.a"
)
