
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/Compare.cpp" "src/metrics/CMakeFiles/lcm_metrics.dir/Compare.cpp.o" "gcc" "src/metrics/CMakeFiles/lcm_metrics.dir/Compare.cpp.o.d"
  "/root/repo/src/metrics/Cost.cpp" "src/metrics/CMakeFiles/lcm_metrics.dir/Cost.cpp.o" "gcc" "src/metrics/CMakeFiles/lcm_metrics.dir/Cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/lcm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/lcm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lcm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/lcm_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
