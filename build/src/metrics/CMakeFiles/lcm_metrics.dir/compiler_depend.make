# Empty compiler generated dependencies file for lcm_metrics.
# This may be replaced when dependencies are built.
