
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/AddressGen.cpp" "src/workload/CMakeFiles/lcm_workload.dir/AddressGen.cpp.o" "gcc" "src/workload/CMakeFiles/lcm_workload.dir/AddressGen.cpp.o.d"
  "/root/repo/src/workload/Corpus.cpp" "src/workload/CMakeFiles/lcm_workload.dir/Corpus.cpp.o" "gcc" "src/workload/CMakeFiles/lcm_workload.dir/Corpus.cpp.o.d"
  "/root/repo/src/workload/PaperExamples.cpp" "src/workload/CMakeFiles/lcm_workload.dir/PaperExamples.cpp.o" "gcc" "src/workload/CMakeFiles/lcm_workload.dir/PaperExamples.cpp.o.d"
  "/root/repo/src/workload/RandomCfg.cpp" "src/workload/CMakeFiles/lcm_workload.dir/RandomCfg.cpp.o" "gcc" "src/workload/CMakeFiles/lcm_workload.dir/RandomCfg.cpp.o.d"
  "/root/repo/src/workload/StructuredGen.cpp" "src/workload/CMakeFiles/lcm_workload.dir/StructuredGen.cpp.o" "gcc" "src/workload/CMakeFiles/lcm_workload.dir/StructuredGen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
