# Empty dependencies file for lcm_workload.
# This may be replaced when dependencies are built.
