file(REMOVE_RECURSE
  "liblcm_workload.a"
)
