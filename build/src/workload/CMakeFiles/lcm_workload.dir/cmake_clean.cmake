file(REMOVE_RECURSE
  "CMakeFiles/lcm_workload.dir/AddressGen.cpp.o"
  "CMakeFiles/lcm_workload.dir/AddressGen.cpp.o.d"
  "CMakeFiles/lcm_workload.dir/Corpus.cpp.o"
  "CMakeFiles/lcm_workload.dir/Corpus.cpp.o.d"
  "CMakeFiles/lcm_workload.dir/PaperExamples.cpp.o"
  "CMakeFiles/lcm_workload.dir/PaperExamples.cpp.o.d"
  "CMakeFiles/lcm_workload.dir/RandomCfg.cpp.o"
  "CMakeFiles/lcm_workload.dir/RandomCfg.cpp.o.d"
  "CMakeFiles/lcm_workload.dir/StructuredGen.cpp.o"
  "CMakeFiles/lcm_workload.dir/StructuredGen.cpp.o.d"
  "liblcm_workload.a"
  "liblcm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
