# Empty compiler generated dependencies file for lcm_dataflow.
# This may be replaced when dependencies are built.
