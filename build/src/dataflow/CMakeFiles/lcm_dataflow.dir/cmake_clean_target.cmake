file(REMOVE_RECURSE
  "liblcm_dataflow.a"
)
