file(REMOVE_RECURSE
  "CMakeFiles/lcm_dataflow.dir/Dataflow.cpp.o"
  "CMakeFiles/lcm_dataflow.dir/Dataflow.cpp.o.d"
  "liblcm_dataflow.a"
  "liblcm_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
