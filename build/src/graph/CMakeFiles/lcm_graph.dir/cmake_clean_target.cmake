file(REMOVE_RECURSE
  "liblcm_graph.a"
)
