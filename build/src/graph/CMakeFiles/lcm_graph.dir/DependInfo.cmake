
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/CfgEdges.cpp" "src/graph/CMakeFiles/lcm_graph.dir/CfgEdges.cpp.o" "gcc" "src/graph/CMakeFiles/lcm_graph.dir/CfgEdges.cpp.o.d"
  "/root/repo/src/graph/CriticalEdges.cpp" "src/graph/CMakeFiles/lcm_graph.dir/CriticalEdges.cpp.o" "gcc" "src/graph/CMakeFiles/lcm_graph.dir/CriticalEdges.cpp.o.d"
  "/root/repo/src/graph/Dfs.cpp" "src/graph/CMakeFiles/lcm_graph.dir/Dfs.cpp.o" "gcc" "src/graph/CMakeFiles/lcm_graph.dir/Dfs.cpp.o.d"
  "/root/repo/src/graph/Dominators.cpp" "src/graph/CMakeFiles/lcm_graph.dir/Dominators.cpp.o" "gcc" "src/graph/CMakeFiles/lcm_graph.dir/Dominators.cpp.o.d"
  "/root/repo/src/graph/Loops.cpp" "src/graph/CMakeFiles/lcm_graph.dir/Loops.cpp.o" "gcc" "src/graph/CMakeFiles/lcm_graph.dir/Loops.cpp.o.d"
  "/root/repo/src/graph/PostDominators.cpp" "src/graph/CMakeFiles/lcm_graph.dir/PostDominators.cpp.o" "gcc" "src/graph/CMakeFiles/lcm_graph.dir/PostDominators.cpp.o.d"
  "/root/repo/src/graph/Reducibility.cpp" "src/graph/CMakeFiles/lcm_graph.dir/Reducibility.cpp.o" "gcc" "src/graph/CMakeFiles/lcm_graph.dir/Reducibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
