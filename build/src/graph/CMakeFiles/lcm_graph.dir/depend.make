# Empty dependencies file for lcm_graph.
# This may be replaced when dependencies are built.
