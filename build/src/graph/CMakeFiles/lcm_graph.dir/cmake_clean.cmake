file(REMOVE_RECURSE
  "CMakeFiles/lcm_graph.dir/CfgEdges.cpp.o"
  "CMakeFiles/lcm_graph.dir/CfgEdges.cpp.o.d"
  "CMakeFiles/lcm_graph.dir/CriticalEdges.cpp.o"
  "CMakeFiles/lcm_graph.dir/CriticalEdges.cpp.o.d"
  "CMakeFiles/lcm_graph.dir/Dfs.cpp.o"
  "CMakeFiles/lcm_graph.dir/Dfs.cpp.o.d"
  "CMakeFiles/lcm_graph.dir/Dominators.cpp.o"
  "CMakeFiles/lcm_graph.dir/Dominators.cpp.o.d"
  "CMakeFiles/lcm_graph.dir/Loops.cpp.o"
  "CMakeFiles/lcm_graph.dir/Loops.cpp.o.d"
  "CMakeFiles/lcm_graph.dir/PostDominators.cpp.o"
  "CMakeFiles/lcm_graph.dir/PostDominators.cpp.o.d"
  "CMakeFiles/lcm_graph.dir/Reducibility.cpp.o"
  "CMakeFiles/lcm_graph.dir/Reducibility.cpp.o.d"
  "liblcm_graph.a"
  "liblcm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
