file(REMOVE_RECURSE
  "liblcm_support.a"
)
