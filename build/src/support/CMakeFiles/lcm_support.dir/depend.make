# Empty dependencies file for lcm_support.
# This may be replaced when dependencies are built.
