file(REMOVE_RECURSE
  "CMakeFiles/lcm_support.dir/BitVector.cpp.o"
  "CMakeFiles/lcm_support.dir/BitVector.cpp.o.d"
  "CMakeFiles/lcm_support.dir/Stats.cpp.o"
  "CMakeFiles/lcm_support.dir/Stats.cpp.o.d"
  "CMakeFiles/lcm_support.dir/Table.cpp.o"
  "CMakeFiles/lcm_support.dir/Table.cpp.o.d"
  "liblcm_support.a"
  "liblcm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
