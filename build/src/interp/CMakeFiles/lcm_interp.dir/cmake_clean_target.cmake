file(REMOVE_RECURSE
  "liblcm_interp.a"
)
