# Empty dependencies file for lcm_interp.
# This may be replaced when dependencies are built.
