file(REMOVE_RECURSE
  "CMakeFiles/lcm_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/lcm_interp.dir/Interpreter.cpp.o.d"
  "liblcm_interp.a"
  "liblcm_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
