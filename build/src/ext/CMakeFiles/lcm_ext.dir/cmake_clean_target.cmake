file(REMOVE_RECURSE
  "liblcm_ext.a"
)
