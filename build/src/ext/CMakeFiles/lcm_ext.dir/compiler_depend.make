# Empty compiler generated dependencies file for lcm_ext.
# This may be replaced when dependencies are built.
