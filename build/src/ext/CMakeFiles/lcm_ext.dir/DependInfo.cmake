
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ext/StrengthReduction.cpp" "src/ext/CMakeFiles/lcm_ext.dir/StrengthReduction.cpp.o" "gcc" "src/ext/CMakeFiles/lcm_ext.dir/StrengthReduction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lcm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
