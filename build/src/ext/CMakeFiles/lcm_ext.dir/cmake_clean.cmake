file(REMOVE_RECURSE
  "CMakeFiles/lcm_ext.dir/StrengthReduction.cpp.o"
  "CMakeFiles/lcm_ext.dir/StrengthReduction.cpp.o.d"
  "liblcm_ext.a"
  "liblcm_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
