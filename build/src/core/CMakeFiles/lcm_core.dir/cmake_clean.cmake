file(REMOVE_RECURSE
  "CMakeFiles/lcm_core.dir/Lcm.cpp.o"
  "CMakeFiles/lcm_core.dir/Lcm.cpp.o.d"
  "CMakeFiles/lcm_core.dir/LocalCse.cpp.o"
  "CMakeFiles/lcm_core.dir/LocalCse.cpp.o.d"
  "CMakeFiles/lcm_core.dir/Placement.cpp.o"
  "CMakeFiles/lcm_core.dir/Placement.cpp.o.d"
  "CMakeFiles/lcm_core.dir/SingleInstr.cpp.o"
  "CMakeFiles/lcm_core.dir/SingleInstr.cpp.o.d"
  "liblcm_core.a"
  "liblcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
