# Empty compiler generated dependencies file for lcm_core.
# This may be replaced when dependencies are built.
