file(REMOVE_RECURSE
  "liblcm_core.a"
)
