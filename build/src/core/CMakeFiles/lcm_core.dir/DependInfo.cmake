
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Lcm.cpp" "src/core/CMakeFiles/lcm_core.dir/Lcm.cpp.o" "gcc" "src/core/CMakeFiles/lcm_core.dir/Lcm.cpp.o.d"
  "/root/repo/src/core/LocalCse.cpp" "src/core/CMakeFiles/lcm_core.dir/LocalCse.cpp.o" "gcc" "src/core/CMakeFiles/lcm_core.dir/LocalCse.cpp.o.d"
  "/root/repo/src/core/Placement.cpp" "src/core/CMakeFiles/lcm_core.dir/Placement.cpp.o" "gcc" "src/core/CMakeFiles/lcm_core.dir/Placement.cpp.o.d"
  "/root/repo/src/core/SingleInstr.cpp" "src/core/CMakeFiles/lcm_core.dir/SingleInstr.cpp.o" "gcc" "src/core/CMakeFiles/lcm_core.dir/SingleInstr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/lcm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/lcm_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lcm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
