file(REMOVE_RECURSE
  "liblcm_driver.a"
)
