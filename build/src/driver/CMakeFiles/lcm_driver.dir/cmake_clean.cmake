file(REMOVE_RECURSE
  "CMakeFiles/lcm_driver.dir/Pipeline.cpp.o"
  "CMakeFiles/lcm_driver.dir/Pipeline.cpp.o.d"
  "liblcm_driver.a"
  "liblcm_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcm_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
