# Empty dependencies file for lcm_driver.
# This may be replaced when dependencies are built.
