# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_loop_invariant "/root/repo/build/examples/loop_invariant")
set_tests_properties(example_loop_invariant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_register_pressure "/root/repo/build/examples/register_pressure")
set_tests_properties(example_register_pressure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_address_kernel "/root/repo/build/examples/address_kernel")
set_tests_properties(example_address_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optimize_tool "/root/repo/build/examples/optimize_tool" "--pipeline=lcse,lcm,cleanup" "--stats" "/root/repo/examples/fixtures/partial.lcm")
set_tests_properties(example_optimize_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optimize_tool_dot "/root/repo/build/examples/optimize_tool" "--pass=lcm" "--dot" "/root/repo/examples/fixtures/partial.lcm")
set_tests_properties(example_optimize_tool_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optimize_tool_list "/root/repo/build/examples/optimize_tool" "--list-passes")
set_tests_properties(example_optimize_tool_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
