file(REMOVE_RECURSE
  "CMakeFiles/address_kernel.dir/address_kernel.cpp.o"
  "CMakeFiles/address_kernel.dir/address_kernel.cpp.o.d"
  "address_kernel"
  "address_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
