# Empty dependencies file for address_kernel.
# This may be replaced when dependencies are built.
