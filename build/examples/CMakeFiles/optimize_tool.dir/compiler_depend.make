# Empty compiler generated dependencies file for optimize_tool.
# This may be replaced when dependencies are built.
