file(REMOVE_RECURSE
  "CMakeFiles/optimize_tool.dir/optimize_tool.cpp.o"
  "CMakeFiles/optimize_tool.dir/optimize_tool.cpp.o.d"
  "optimize_tool"
  "optimize_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
