# Empty dependencies file for table0_corpus.
# This may be replaced when dependencies are built.
