file(REMOVE_RECURSE
  "CMakeFiles/table0_corpus.dir/table0_corpus.cpp.o"
  "CMakeFiles/table0_corpus.dir/table0_corpus.cpp.o.d"
  "table0_corpus"
  "table0_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table0_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
