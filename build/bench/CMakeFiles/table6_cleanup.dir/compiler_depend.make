# Empty compiler generated dependencies file for table6_cleanup.
# This may be replaced when dependencies are built.
