file(REMOVE_RECURSE
  "CMakeFiles/table6_cleanup.dir/table6_cleanup.cpp.o"
  "CMakeFiles/table6_cleanup.dir/table6_cleanup.cpp.o.d"
  "table6_cleanup"
  "table6_cleanup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_cleanup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
