# Empty dependencies file for table1_computations.
# This may be replaced when dependencies are built.
