file(REMOVE_RECURSE
  "CMakeFiles/table5_equivalence.dir/table5_equivalence.cpp.o"
  "CMakeFiles/table5_equivalence.dir/table5_equivalence.cpp.o.d"
  "table5_equivalence"
  "table5_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
