# Empty compiler generated dependencies file for table5_equivalence.
# This may be replaced when dependencies are built.
