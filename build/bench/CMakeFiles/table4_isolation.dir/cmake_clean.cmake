file(REMOVE_RECURSE
  "CMakeFiles/table4_isolation.dir/table4_isolation.cpp.o"
  "CMakeFiles/table4_isolation.dir/table4_isolation.cpp.o.d"
  "table4_isolation"
  "table4_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
