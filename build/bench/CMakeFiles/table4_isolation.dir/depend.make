# Empty dependencies file for table4_isolation.
# This may be replaced when dependencies are built.
