# Empty dependencies file for table2_lifetimes.
# This may be replaced when dependencies are built.
