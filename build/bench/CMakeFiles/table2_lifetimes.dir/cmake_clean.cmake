file(REMOVE_RECURSE
  "CMakeFiles/table2_lifetimes.dir/table2_lifetimes.cpp.o"
  "CMakeFiles/table2_lifetimes.dir/table2_lifetimes.cpp.o.d"
  "table2_lifetimes"
  "table2_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
