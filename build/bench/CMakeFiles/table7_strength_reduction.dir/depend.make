# Empty dependencies file for table7_strength_reduction.
# This may be replaced when dependencies are built.
