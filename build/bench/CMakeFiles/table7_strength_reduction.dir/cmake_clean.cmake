file(REMOVE_RECURSE
  "CMakeFiles/table7_strength_reduction.dir/table7_strength_reduction.cpp.o"
  "CMakeFiles/table7_strength_reduction.dir/table7_strength_reduction.cpp.o.d"
  "table7_strength_reduction"
  "table7_strength_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_strength_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
