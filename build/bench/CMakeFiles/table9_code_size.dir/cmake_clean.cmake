file(REMOVE_RECURSE
  "CMakeFiles/table9_code_size.dir/table9_code_size.cpp.o"
  "CMakeFiles/table9_code_size.dir/table9_code_size.cpp.o.d"
  "table9_code_size"
  "table9_code_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_code_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
