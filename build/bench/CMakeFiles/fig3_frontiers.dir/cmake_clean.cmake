file(REMOVE_RECURSE
  "CMakeFiles/fig3_frontiers.dir/fig3_frontiers.cpp.o"
  "CMakeFiles/fig3_frontiers.dir/fig3_frontiers.cpp.o.d"
  "fig3_frontiers"
  "fig3_frontiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_frontiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
