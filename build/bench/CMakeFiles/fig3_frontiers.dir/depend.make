# Empty dependencies file for fig3_frontiers.
# This may be replaced when dependencies are built.
