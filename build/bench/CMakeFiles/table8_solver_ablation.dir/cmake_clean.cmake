file(REMOVE_RECURSE
  "CMakeFiles/table8_solver_ablation.dir/table8_solver_ablation.cpp.o"
  "CMakeFiles/table8_solver_ablation.dir/table8_solver_ablation.cpp.o.d"
  "table8_solver_ablation"
  "table8_solver_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_solver_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
