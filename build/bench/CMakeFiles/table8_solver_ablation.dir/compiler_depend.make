# Empty compiler generated dependencies file for table8_solver_ablation.
# This may be replaced when dependencies are built.
