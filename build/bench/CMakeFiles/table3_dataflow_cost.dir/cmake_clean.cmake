file(REMOVE_RECURSE
  "CMakeFiles/table3_dataflow_cost.dir/table3_dataflow_cost.cpp.o"
  "CMakeFiles/table3_dataflow_cost.dir/table3_dataflow_cost.cpp.o.d"
  "table3_dataflow_cost"
  "table3_dataflow_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dataflow_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
