# Empty dependencies file for table3_dataflow_cost.
# This may be replaced when dependencies are built.
