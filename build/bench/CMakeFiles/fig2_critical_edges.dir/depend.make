# Empty dependencies file for fig2_critical_edges.
# This may be replaced when dependencies are built.
