file(REMOVE_RECURSE
  "CMakeFiles/fig2_critical_edges.dir/fig2_critical_edges.cpp.o"
  "CMakeFiles/fig2_critical_edges.dir/fig2_critical_edges.cpp.o.d"
  "fig2_critical_edges"
  "fig2_critical_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_critical_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
